// Package analysis implements the downstream analyses the paper motivates
// streamline computation with (Section 2.1): Poincaré puncture plots (the
// fusion community's standard view of field-line topology, called out in
// Section 8), Lagrangian analysis via finite-time Lyapunov exponents
// (FTLE, the "many thousands to millions of streamlines" workload), and
// summary statistics over streamline ensembles.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/trace"
	"repro/internal/vec"
)

// Plane is an oriented plane through Point with unit Normal.
type Plane struct {
	Point  vec.V3
	Normal vec.V3
}

// signedDist returns the signed distance of p from the plane.
func (pl Plane) signedDist(p vec.V3) float64 {
	return p.Sub(pl.Point).Dot(pl.Normal)
}

// Puncture is one crossing of a streamline through a section plane.
type Puncture struct {
	StreamlineID int
	P            vec.V3 // crossing point (linear interpolation on the segment)
	Index        int    // geometry segment index of the crossing
	Forward      bool   // true when crossing along the plane normal
}

// Punctures computes the Poincaré puncture points of the streamlines
// through the section plane. Crossings are detected per geometry segment
// and located by linear interpolation; direction follows the sign change.
func Punctures(sls []*trace.Streamline, plane Plane) []Puncture {
	n := plane.Normal.Normalized()
	pl := Plane{Point: plane.Point, Normal: n}
	var out []Puncture
	for _, sl := range sls {
		prev := 0.0
		for i, p := range sl.Points {
			d := pl.signedDist(p)
			if i > 0 && d*prev < 0 {
				t := prev / (prev - d)
				out = append(out, Puncture{
					StreamlineID: sl.ID,
					P:            sl.Points[i-1].Lerp(p, t),
					Index:        i - 1,
					Forward:      d > 0,
				})
			}
			if d != 0 {
				prev = d
			}
		}
	}
	return out
}

// PunctureSection maps punctures into 2D section coordinates (u, w) on
// the plane, using a deterministic in-plane basis.
func PunctureSection(punctures []Puncture, plane Plane) [][2]float64 {
	n := plane.Normal.Normalized()
	ref := vec.Of(1, 0, 0)
	if math.Abs(n.X) > 0.9 {
		ref = vec.Of(0, 1, 0)
	}
	u := n.Cross(ref).Normalized()
	w := n.Cross(u).Normalized()
	out := make([][2]float64, len(punctures))
	for i, p := range punctures {
		d := p.P.Sub(plane.Point)
		out[i] = [2]float64{d.Dot(u), d.Dot(w)}
	}
	return out
}

// FTLEOptions configures a finite-time Lyapunov exponent computation.
type FTLEOptions struct {
	// T is the advection horizon (integration time).
	T float64
	// H is the finite-difference offset between neighboring particles.
	H float64
	// IntOpts configures the underlying solver.
	IntOpts integrate.Options
	// MaxSteps bounds each particle trajectory (0 = 10000).
	MaxSteps int
}

// FTLEField is a scalar field of FTLE values sampled on a regular grid.
type FTLEField struct {
	Bounds     vec.AABB
	NX, NY, NZ int
	Values     []float64 // x-fastest layout
}

// At returns the FTLE value at grid node (i, j, k).
func (f *FTLEField) At(i, j, k int) float64 {
	return f.Values[(k*f.NY+j)*f.NX+i]
}

// MinMax returns the value range, ignoring NaNs.
func (f *FTLEField) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range f.Values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return
}

// flowMap advects a single particle for time T and returns its final
// position.
func flowMap(ev grid.Evaluator, p vec.V3, opts FTLEOptions) vec.V3 {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	s := integrate.NewDoPri5(opts.IntOpts)
	res := s.Advect(ev, p, 0, integrate.AdvectLimits{
		Bounds:   vec.Box(vec.Of(-1e18, -1e18, -1e18), vec.Of(1e18, 1e18, 1e18)),
		MaxSteps: maxSteps,
		MaxTime:  opts.T,
	})
	return res.P
}

// FTLE computes the finite-time Lyapunov exponent on an nx×ny×nz sample
// grid over box: for each sample, six offset particles are advected for
// time T and the largest singular value of the flow-map gradient gives
// the exponential separation rate — ridges of this field are the
// Lagrangian coherent structures of Section 2.1.
func FTLE(ev grid.Evaluator, box vec.AABB, nx, ny, nz int, opts FTLEOptions) *FTLEField {
	if opts.T == 0 {
		opts.T = 1
	}
	if opts.H == 0 {
		opts.H = box.Size().MinComponent() / float64(maxInt3(nx, ny, nz)) / 2
	}
	f := &FTLEField{Bounds: box, NX: nx, NY: ny, NZ: nz, Values: make([]float64, nx*ny*nz)}
	size := box.Size()
	h := opts.H
	at := 0
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				frac := func(idx, n int) float64 {
					if n == 1 {
						return 0.5
					}
					return float64(idx) / float64(n-1)
				}
				p := box.Min.Add(size.Mul(vec.Of(frac(i, nx), frac(j, ny), frac(k, nz))))
				// Flow-map gradient by central differences.
				var grad [3]vec.V3 // columns: d(flow)/dx, /dy, /dz
				offs := [3]vec.V3{{X: h}, {Y: h}, {Z: h}}
				for c, o := range offs {
					fp := flowMap(ev, p.Add(o), opts)
					fm := flowMap(ev, p.Sub(o), opts)
					grad[c] = fp.Sub(fm).Scale(1 / (2 * h))
				}
				// Cauchy–Green tensor C = J^T J; its largest eigenvalue
				// lambda gives FTLE = ln(sqrt(lambda)) / |T|.
				lambda := largestEigCauchyGreen(grad)
				if lambda <= 0 {
					f.Values[at] = math.NaN()
				} else {
					f.Values[at] = math.Log(math.Sqrt(lambda)) / math.Abs(opts.T)
				}
				at++
			}
		}
	}
	return f
}

// largestEigCauchyGreen computes the largest eigenvalue of J^T J where
// J's columns are the given gradient vectors, via power iteration (the
// matrix is symmetric positive semi-definite).
func largestEigCauchyGreen(cols [3]vec.V3) float64 {
	// C[i][j] = cols[i] . cols[j]
	var c [3][3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			c[i][j] = cols[i].Dot(cols[j])
		}
	}
	v := [3]float64{1, 0.7, 0.4}
	lambda := 0.0
	for iter := 0; iter < 100; iter++ {
		var w [3]float64
		for i := 0; i < 3; i++ {
			w[i] = c[i][0]*v[0] + c[i][1]*v[1] + c[i][2]*v[2]
		}
		n := math.Sqrt(w[0]*w[0] + w[1]*w[1] + w[2]*w[2])
		if n == 0 {
			return 0
		}
		next := n
		for i := 0; i < 3; i++ {
			v[i] = w[i] / n
		}
		if math.Abs(next-lambda) < 1e-12*math.Max(1, next) {
			return next
		}
		lambda = next
	}
	return lambda
}

func maxInt3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// Stats summarizes a streamline ensemble.
type Stats struct {
	Count       int
	TotalPoints int
	TotalSteps  int
	// Arc length distribution.
	MeanLength   float64
	MedianLength float64
	MaxLength    float64
	// Termination breakdown by status.
	ByStatus map[trace.Status]int
	// BlocksVisited histograms how many distinct blocks each streamline's
	// geometry passed through (a proxy for its communication/IO cost).
	MeanBlocksVisited float64
	MaxBlocksVisited  int
}

// Summarize computes ensemble statistics; d locates geometry in blocks.
func Summarize(sls []*trace.Streamline, d grid.Decomposition) Stats {
	s := Stats{ByStatus: make(map[trace.Status]int)}
	lengths := make([]float64, 0, len(sls))
	totalBlocks := 0
	for _, sl := range sls {
		s.Count++
		s.TotalPoints += len(sl.Points)
		s.TotalSteps += sl.Steps
		l := sl.ArcLength()
		lengths = append(lengths, l)
		if l > s.MaxLength {
			s.MaxLength = l
		}
		s.ByStatus[sl.Status]++
		visited := map[grid.BlockID]bool{}
		for _, p := range sl.Points {
			if b, ok := d.Locate(p); ok {
				visited[b] = true
			}
		}
		totalBlocks += len(visited)
		if len(visited) > s.MaxBlocksVisited {
			s.MaxBlocksVisited = len(visited)
		}
	}
	if s.Count > 0 {
		var sum float64
		for _, l := range lengths {
			sum += l
		}
		s.MeanLength = sum / float64(s.Count)
		sort.Float64s(lengths)
		s.MedianLength = lengths[s.Count/2]
		s.MeanBlocksVisited = float64(totalBlocks) / float64(s.Count)
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("streamlines=%d points=%d meanLen=%.3f medianLen=%.3f maxLen=%.3f meanBlocks=%.1f",
		s.Count, s.TotalPoints, s.MeanLength, s.MedianLength, s.MaxLength, s.MeanBlocksVisited)
}
