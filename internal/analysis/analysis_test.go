package analysis

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/trace"
	"repro/internal/vec"
)

func lineOf(id int, pts ...vec.V3) *trace.Streamline {
	sl := trace.New(id, pts[0], 0)
	sl.Append(pts[1:])
	return sl
}

func TestPuncturesStraightLine(t *testing.T) {
	// A straight segment crossing the z=0 plane once.
	sl := lineOf(7, vec.Of(0, 0, -1), vec.Of(0, 0, 1))
	pl := Plane{Point: vec.Of(0, 0, 0), Normal: vec.Of(0, 0, 1)}
	ps := Punctures([]*trace.Streamline{sl}, pl)
	if len(ps) != 1 {
		t.Fatalf("punctures = %d, want 1", len(ps))
	}
	if ps[0].P.Dist(vec.Of(0, 0, 0)) > 1e-12 {
		t.Errorf("crossing at %v", ps[0].P)
	}
	if !ps[0].Forward || ps[0].StreamlineID != 7 {
		t.Errorf("puncture = %+v", ps[0])
	}
}

func TestPuncturesDirection(t *testing.T) {
	// Down-going crossing is backward.
	sl := lineOf(0, vec.Of(0, 0, 1), vec.Of(0, 0, -1))
	pl := Plane{Point: vec.Of(0, 0, 0), Normal: vec.Of(0, 0, 1)}
	ps := Punctures([]*trace.Streamline{sl}, pl)
	if len(ps) != 1 || ps[0].Forward {
		t.Fatalf("punctures = %+v", ps)
	}
}

func TestPuncturesNoCrossing(t *testing.T) {
	sl := lineOf(0, vec.Of(0, 0, 1), vec.Of(1, 0, 2), vec.Of(2, 0, 0.5))
	pl := Plane{Point: vec.Of(0, 0, 0), Normal: vec.Of(0, 0, 1)}
	if ps := Punctures([]*trace.Streamline{sl}, pl); len(ps) != 0 {
		t.Errorf("punctures = %+v", ps)
	}
}

func TestPuncturesRotationCircle(t *testing.T) {
	// A circular streamline in the rotation field crosses the y=0
	// half-plane's full plane twice per revolution.
	f := field.Rotation{Omega: 1}
	s := integrate.NewDoPri5(integrate.Options{Tol: 1e-8, HMax: 0.05})
	res := s.Advect(f, vec.Of(1, 0, 0), 0, integrate.AdvectLimits{
		Bounds:  vec.Box(vec.Of(-2, -2, -2), vec.Of(2, 2, 2)),
		MaxTime: 4 * math.Pi, // two revolutions
	})
	sl := trace.New(0, vec.Of(1, 0, 0), 0)
	sl.Append(res.Points)
	pl := Plane{Point: vec.Of(0, 0, 0), Normal: vec.Of(0, 1, 0)}
	ps := Punctures([]*trace.Streamline{sl}, pl)
	if len(ps) != 4 {
		t.Fatalf("punctures = %d, want 4 (2 per revolution)", len(ps))
	}
	for _, p := range ps {
		// Crossings of the unit circle through y=0 happen at x = ±1.
		if math.Abs(math.Abs(p.P.X)-1) > 1e-3 {
			t.Errorf("crossing at %v, want |x|=1", p.P)
		}
	}
}

func TestPunctureSectionCoordinates(t *testing.T) {
	pl := Plane{Point: vec.Of(0, 0, 0), Normal: vec.Of(0, 0, 1)}
	ps := []Puncture{{P: vec.Of(0.3, -0.4, 0)}}
	uv := PunctureSection(ps, pl)
	if len(uv) != 1 {
		t.Fatal("missing section point")
	}
	// In-plane radius must be preserved.
	r := math.Hypot(uv[0][0], uv[0][1])
	if math.Abs(r-0.5) > 1e-12 {
		t.Errorf("section radius = %g, want 0.5", r)
	}
}

func TestTokamakPuncturesStayInTorus(t *testing.T) {
	// Field-line punctures of a poloidal section must fall inside the
	// plasma cross-section: the invariant-torus structure of the field.
	tok := field.DefaultTokamak()
	s := integrate.NewDoPri5(integrate.Options{Tol: 1e-7, HMax: 0.02})
	start := vec.Of(tok.MajorRadius+0.1, 0, 0)
	res := s.Advect(tok, start, 0, integrate.AdvectLimits{
		Bounds:   tok.Bounds(),
		MaxSteps: 20000,
	})
	sl := trace.New(0, start, 0)
	sl.Append(res.Points)
	pl := Plane{Point: vec.Of(0, 0, 0), Normal: vec.Of(0, 1, 0)}
	ps := Punctures([]*trace.Streamline{sl}, pl)
	if len(ps) < 4 {
		t.Fatalf("only %d punctures; line did not wind", len(ps))
	}
	for _, p := range ps {
		if !tok.InsideTorus(p.P) {
			t.Errorf("puncture %v escaped the torus", p.P)
		}
	}
}

func TestFTLEUniformFieldIsZero(t *testing.T) {
	// A uniform field has zero separation: FTLE ~ 0 everywhere.
	f := field.Uniform{V: vec.Of(1, 0, 0), Box: vec.Box(vec.Of(-10, -10, -10), vec.Of(10, 10, 10))}
	box := vec.Box(vec.Of(0, 0, 0), vec.Of(1, 1, 1))
	ftle := FTLE(f, box, 3, 3, 3, FTLEOptions{T: 1, IntOpts: integrate.Options{Tol: 1e-8}})
	for i, v := range ftle.Values {
		if math.IsNaN(v) || math.Abs(v) > 1e-3 {
			t.Fatalf("FTLE[%d] = %g, want ~0", i, v)
		}
	}
}

func TestFTLESaddleMatchesTheory(t *testing.T) {
	// The saddle v = (x, -y, 0) separates exponentially at rate 1:
	// FTLE = 1 everywhere, independent of T.
	f := field.Saddle{Box: vec.Box(vec.Of(-100, -100, -100), vec.Of(100, 100, 100))}
	box := vec.Box(vec.Of(-0.5, -0.5, -0.1), vec.Of(0.5, 0.5, 0.1))
	ftle := FTLE(f, box, 3, 3, 2, FTLEOptions{T: 2, H: 1e-4, IntOpts: integrate.Options{Tol: 1e-9}})
	for i, v := range ftle.Values {
		if math.Abs(v-1) > 0.05 {
			t.Fatalf("FTLE[%d] = %g, want 1 (saddle stretching rate)", i, v)
		}
	}
	lo, hi := ftle.MinMax()
	if lo < 0.9 || hi > 1.1 {
		t.Errorf("range [%g, %g], want ~[1,1]", lo, hi)
	}
}

func TestFTLERotationIsNonChaotic(t *testing.T) {
	// Rigid rotation preserves distances: FTLE ~ 0.
	f := field.Rotation{Omega: 2, Box: vec.Box(vec.Of(-10, -10, -10), vec.Of(10, 10, 10))}
	box := vec.Box(vec.Of(0.2, 0.2, -0.1), vec.Of(0.8, 0.8, 0.1))
	ftle := FTLE(f, box, 3, 3, 1, FTLEOptions{T: 3, H: 1e-4, IntOpts: integrate.Options{Tol: 1e-9}})
	for i, v := range ftle.Values {
		if math.Abs(v) > 0.02 {
			t.Fatalf("FTLE[%d] = %g, want ~0 for rigid rotation", i, v)
		}
	}
}

func TestFTLEFieldIndexing(t *testing.T) {
	f := &FTLEField{NX: 2, NY: 3, NZ: 2, Values: make([]float64, 12)}
	f.Values[(1*3+2)*2+1] = 42 // (i=1, j=2, k=1)
	if f.At(1, 2, 1) != 42 {
		t.Error("At indexing wrong")
	}
}

func TestSummarize(t *testing.T) {
	d := grid.NewDecomposition(vec.Box(vec.Of(0, 0, 0), vec.Of(1, 1, 1)), 2, 2, 2, 4)
	a := lineOf(0, vec.Of(0.1, 0.1, 0.1), vec.Of(0.9, 0.1, 0.1)) // crosses 2 blocks
	a.Status = trace.OutOfBounds
	a.Steps = 10
	b := lineOf(1, vec.Of(0.2, 0.2, 0.2), vec.Of(0.3, 0.2, 0.2)) // stays in 1 block
	b.Status = trace.MaxedOut
	b.Steps = 5
	s := Summarize([]*trace.Streamline{a, b}, d)
	if s.Count != 2 || s.TotalPoints != 4 || s.TotalSteps != 15 {
		t.Errorf("counts wrong: %+v", s)
	}
	if math.Abs(s.MeanLength-0.45) > 1e-12 {
		t.Errorf("MeanLength = %g", s.MeanLength)
	}
	if s.MaxLength != 0.8 {
		t.Errorf("MaxLength = %g", s.MaxLength)
	}
	if s.ByStatus[trace.OutOfBounds] != 1 || s.ByStatus[trace.MaxedOut] != 1 {
		t.Errorf("ByStatus = %v", s.ByStatus)
	}
	if s.MaxBlocksVisited != 2 || math.Abs(s.MeanBlocksVisited-1.5) > 1e-12 {
		t.Errorf("blocks visited: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	d := grid.NewDecomposition(vec.Box(vec.Of(0, 0, 0), vec.Of(1, 1, 1)), 1, 1, 1, 2)
	s := Summarize(nil, d)
	if s.Count != 0 || s.MeanLength != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}
