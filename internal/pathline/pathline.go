// Package pathline is the single-processor reference implementation of
// time-varying (pathline) tracing — the paper's Section 8 future-work
// direction. Section 4 already lays the groundwork: "Each block has a
// time step associated with it, thus two blocks that occupy the same
// space at different times are considered independent." This package
// implements that time-sliced block model, an out-of-core pathline
// tracer over it, and the I/O accounting that exposes the paper's
// observation that "computing pathlines leads to many small reads that
// can often overwhelm the file system".
//
// The parallel engine supersedes this package for campaigns: a
// time-sliced grid.Decomposition (grid/spacetime.go) routes the same
// workload through all four algorithms in internal/core — see
// DESIGN.md §7 and the -unsteady flag on slrun/slbench. The tracer here
// remains as the minimal, dependency-light reference (used by
// examples/lagrangian) whose slice model the engine shares.
package pathline

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/trace"
	"repro/internal/vec"
)

// UnsteadyField is a time-varying vector field v(x, t).
type UnsteadyField interface {
	EvalAt(p vec.V3, t float64) vec.V3
	Bounds() vec.AABB
	// TimeRange returns the simulated interval [T0, T1] the data covers.
	TimeRange() (t0, t1 float64)
}

// Steady adapts a stationary field into an UnsteadyField over [0, T].
type Steady struct {
	Eval   func(p vec.V3) vec.V3
	Box    vec.AABB
	T0, T1 float64
}

// EvalAt implements UnsteadyField.
func (s Steady) EvalAt(p vec.V3, _ float64) vec.V3 { return s.Eval(p) }

// Bounds implements UnsteadyField.
func (s Steady) Bounds() vec.AABB { return s.Box }

// TimeRange implements UnsteadyField.
func (s Steady) TimeRange() (float64, float64) { return s.T0, s.T1 }

// Series is a time-sliced dataset: the spatial decomposition crossed with
// NT time steps. A (block, step) pair is the unit of I/O, exactly as the
// paper's block-with-a-time-step model prescribes.
type Series struct {
	Field UnsteadyField
	D     grid.Decomposition
	NT    int // number of stored time slices
}

// NewSeries builds a series over the field's time range with nt slices.
func NewSeries(f UnsteadyField, d grid.Decomposition, nt int) (*Series, error) {
	if nt < 2 {
		return nil, fmt.Errorf("pathline: need at least 2 time slices, got %d", nt)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &Series{Field: f, D: d, NT: nt}, nil
}

// SliceTime returns the simulation time of slice s.
func (se *Series) SliceTime(s int) float64 {
	t0, t1 := se.Field.TimeRange()
	return t0 + (t1-t0)*float64(s)/float64(se.NT-1)
}

// SliceOf returns the slice index i such that t lies in
// [SliceTime(i), SliceTime(i+1)), clamped to the valid range.
func (se *Series) SliceOf(t float64) int {
	t0, t1 := se.Field.TimeRange()
	if t1 <= t0 {
		return 0
	}
	i := int(float64(se.NT-1) * (t - t0) / (t1 - t0))
	if i < 0 {
		i = 0
	}
	if i > se.NT-2 {
		i = se.NT - 2
	}
	return i
}

// Key identifies one stored slice of one spatial block.
type Key struct {
	Block grid.BlockID
	Step  int
}

// Tracer advects pathlines through a Series, tracking which (block, step)
// slices must be resident. Temporal interpolation needs the two slices
// bracketing the current time, so every advection window holds 2 slices
// per spatial block — the doubling behind the paper's pathline I/O
// concern.
type Tracer struct {
	Series *Series
	Opts   integrate.Options
	// MaxResident bounds the resident slice set (LRU, <=0 unbounded).
	MaxResident int

	resident map[Key]bool
	order    []Key // LRU order, oldest first
	// Loads counts slice reads; Purges counts evictions. BytesLoaded
	// charges each read at the block's byte size.
	Loads, Purges int64
	BytesLoaded   int64
}

// NewTracer builds a tracer with the given cache bound.
func NewTracer(se *Series, opts integrate.Options, maxResident int) *Tracer {
	return &Tracer{
		Series:      se,
		Opts:        opts,
		MaxResident: maxResident,
		resident:    make(map[Key]bool),
	}
}

// require makes a slice resident, charging a load if absent.
func (tr *Tracer) require(k Key) {
	if tr.resident[k] {
		// Refresh recency.
		for i, o := range tr.order {
			if o == k {
				tr.order = append(tr.order[:i], tr.order[i+1:]...)
				break
			}
		}
		tr.order = append(tr.order, k)
		return
	}
	tr.resident[k] = true
	tr.order = append(tr.order, k)
	tr.Loads++
	tr.BytesLoaded += tr.Series.D.BlockBytes()
	for tr.MaxResident > 0 && len(tr.order) > tr.MaxResident {
		victim := tr.order[0]
		tr.order = tr.order[1:]
		delete(tr.resident, victim)
		tr.Purges++
	}
}

// Trace advects one pathline from seed at time t0 until the time range
// ends, the domain is left, or maxSteps is exhausted. Every (block, step)
// slice the trajectory touches is loaded (two temporal slices per
// window).
func (tr *Tracer) Trace(id int, seed vec.V3, t0 float64, maxSteps int) *trace.Streamline {
	se := tr.Series
	_, tEnd := se.Field.TimeRange()
	sl := trace.New(id, seed, grid.NoBlock)
	b, ok := se.D.Locate(seed)
	if !ok {
		sl.Status = trace.OutOfBounds
		return sl
	}
	sl.Block = b
	solver := integrate.NewDoPri5(tr.Opts)
	t := t0
	for sl.Status == trace.Active {
		if sl.Steps >= maxSteps {
			sl.Status = trace.MaxedOut
			break
		}
		step := se.SliceOf(t)
		tr.require(Key{Block: sl.Block, Step: step})
		tr.require(Key{Block: sl.Block, Step: step + 1})
		// Advance within the current block AND the current time window.
		windowEnd := se.SliceTime(step + 1)
		if windowEnd > tEnd {
			windowEnd = tEnd
		}
		res := solver.AdvectT(tr.Series.Field, sl.P, t, integrate.AdvectLimits{
			Bounds:   se.D.Bounds(sl.Block),
			MaxSteps: maxSteps - sl.Steps,
			MaxTime:  windowEnd,
		})
		sl.Append(res.Points)
		sl.Steps += res.Steps
		sl.H = solver.H
		t = res.T
		sl.T = t
		switch res.Reason {
		case integrate.StopOutOfBlock:
			if nb, ok := se.D.Locate(sl.P); ok {
				sl.Block = nb
			} else {
				sl.Status = trace.OutOfBounds
			}
		case integrate.StopMaxTime:
			if t >= tEnd-1e-12 {
				sl.Status = trace.MaxedOut // reached the end of the data
			}
			// Otherwise just crossed into the next time window; loop.
		case integrate.StopMaxSteps:
			sl.Status = trace.MaxedOut
		case integrate.StopCritical:
			sl.Status = trace.AtCritical
		case integrate.StopError:
			sl.Status = trace.Failed
		}
	}
	return sl
}

// TraceAll traces a pathline from every seed, all released at t0, and
// returns them with aggregate I/O statistics intact on the tracer.
func (tr *Tracer) TraceAll(seedPts []vec.V3, t0 float64, maxSteps int) []*trace.Streamline {
	out := make([]*trace.Streamline, len(seedPts))
	for i, s := range seedPts {
		out[i] = tr.Trace(i, s, t0, maxSteps)
	}
	return out
}

// StreamlineLoads estimates the loads the equivalent steady (streamline)
// computation would need: one slice per distinct spatial block touched.
func StreamlineLoads(sls []*trace.Streamline, d grid.Decomposition) int64 {
	seen := map[grid.BlockID]bool{}
	for _, sl := range sls {
		for _, p := range sl.Points {
			if b, ok := d.Locate(p); ok {
				seen[b] = true
			}
		}
	}
	return int64(len(seen))
}
