package pathline

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/trace"
	"repro/internal/vec"
)

var unitBox = vec.Box(vec.Of(0, 0, 0), vec.Of(1, 1, 1))

// switchField flows +x before t=0.5 and +y after: pathlines bend,
// streamlines (frozen at t=0) go straight.
type switchField struct{}

func (switchField) EvalAt(p vec.V3, t float64) vec.V3 {
	if t < 0.5 {
		return vec.Of(0.6, 0, 0)
	}
	return vec.Of(0, 0.6, 0)
}
func (switchField) Bounds() vec.AABB              { return unitBox }
func (switchField) TimeRange() (float64, float64) { return 0, 1 }

func unitSeries(t *testing.T, f UnsteadyField, nb, nt int) *Series {
	t.Helper()
	d := grid.NewDecomposition(f.Bounds(), nb, nb, nb, 8)
	se, err := NewSeries(f, d, nt)
	if err != nil {
		t.Fatal(err)
	}
	return se
}

func TestNewSeriesValidation(t *testing.T) {
	f := switchField{}
	d := grid.NewDecomposition(unitBox, 2, 2, 2, 8)
	if _, err := NewSeries(f, d, 1); err == nil {
		t.Error("nt=1 accepted")
	}
	bad := d
	bad.NX = 0
	if _, err := NewSeries(f, bad, 4); err == nil {
		t.Error("invalid decomposition accepted")
	}
}

func TestSliceTimes(t *testing.T) {
	se := unitSeries(t, switchField{}, 2, 5)
	if se.SliceTime(0) != 0 || se.SliceTime(4) != 1 {
		t.Errorf("slice times: %g..%g", se.SliceTime(0), se.SliceTime(4))
	}
	if got := se.SliceTime(2); got != 0.5 {
		t.Errorf("mid slice time = %g", got)
	}
	if se.SliceOf(0) != 0 {
		t.Errorf("SliceOf(0) = %d", se.SliceOf(0))
	}
	if se.SliceOf(0.6) != 2 {
		t.Errorf("SliceOf(0.6) = %d", se.SliceOf(0.6))
	}
	// Clamps at the ends.
	if se.SliceOf(-1) != 0 || se.SliceOf(2) != se.NT-2 {
		t.Error("SliceOf does not clamp")
	}
}

func TestPathlineBendsWhereStreamlineStraight(t *testing.T) {
	se := unitSeries(t, switchField{}, 2, 5)
	tr := NewTracer(se, integrate.Options{Tol: 1e-7, HMax: 0.02}, 0)
	sl := tr.Trace(0, vec.Of(0.1, 0.1, 0.5), 0, 10000)
	// Expected: +x for 0.5 time units (0.3), then +y until the data ends
	// at t=1 (another 0.3).
	want := vec.Of(0.4, 0.4, 0.5)
	if sl.P.Dist(want) > 1e-3 {
		t.Errorf("pathline ends at %v, want %v", sl.P, want)
	}
	if sl.Status != trace.MaxedOut {
		t.Errorf("status = %v (should end with the data)", sl.Status)
	}

	// The frozen-time streamline goes straight out of the domain in +x.
	steady := Steady{
		Eval: func(p vec.V3) vec.V3 { return switchField{}.EvalAt(p, 0) },
		Box:  unitBox, T0: 0, T1: 10,
	}
	se2 := unitSeries(t, steady, 2, 5)
	tr2 := NewTracer(se2, integrate.Options{Tol: 1e-7, HMax: 0.02}, 0)
	sl2 := tr2.Trace(0, vec.Of(0.1, 0.1, 0.5), 0, 10000)
	if sl2.Status != trace.OutOfBounds {
		t.Errorf("steady status = %v, want out-of-bounds", sl2.Status)
	}
	if math.Abs(sl2.P.Y-0.1) > 1e-6 {
		t.Errorf("steady line drifted in y: %v", sl2.P)
	}
}

func TestPathlineIOAccounting(t *testing.T) {
	se := unitSeries(t, switchField{}, 2, 5)
	tr := NewTracer(se, integrate.Options{Tol: 1e-6, HMax: 0.02}, 0)
	sls := tr.TraceAll([]vec.V3{vec.Of(0.1, 0.1, 0.5), vec.Of(0.1, 0.2, 0.5)}, 0, 10000)
	if tr.Loads == 0 {
		t.Fatal("no loads recorded")
	}
	if tr.BytesLoaded != tr.Loads*se.D.BlockBytes() {
		t.Errorf("bytes = %d, want loads × block bytes", tr.BytesLoaded)
	}
	// Pathlines need at least two time slices per visited block; the
	// steady equivalent needs only one slice per block.
	steadyLoads := StreamlineLoads(sls, se.D)
	if tr.Loads < 2*steadyLoads {
		t.Errorf("pathline loads %d not at least 2× steady loads %d", tr.Loads, steadyLoads)
	}
}

func TestPathlineManySmallReads(t *testing.T) {
	// The paper's §8 point: through a time-varying dataset, the same
	// spatial block must be re-read for every time window the trajectory
	// spends in it — many more reads than the steady case.
	f := field.Rotation{Omega: 2 * math.Pi, Box: vec.Box(vec.Of(-1, -1, -1), vec.Of(1, 1, 1))}
	unsteady := Steady{Eval: f.Eval, Box: f.Box, T0: 0, T1: 4}
	d := grid.NewDecomposition(f.Box, 2, 2, 1, 8)
	se, err := NewSeries(unsteady, d, 17) // 16 time windows
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(se, integrate.Options{Tol: 1e-6, HMax: 0.05}, 0)
	sl := tr.Trace(0, vec.Of(0.5, 0, 0), 0, 100000)
	steady := StreamlineLoads([]*trace.Streamline{sl}, d)
	if steady != 4 {
		t.Fatalf("circle should visit 4 blocks, got %d", steady)
	}
	// 16 windows × blocks visited per window ≫ 4.
	if tr.Loads < 4*steady {
		t.Errorf("pathline loads = %d, want ≫ steady %d", tr.Loads, steady)
	}
}

func TestTracerLRUPurges(t *testing.T) {
	f := field.Rotation{Omega: 2 * math.Pi, Box: vec.Box(vec.Of(-1, -1, -1), vec.Of(1, 1, 1))}
	unsteady := Steady{Eval: f.Eval, Box: f.Box, T0: 0, T1: 4}
	d := grid.NewDecomposition(f.Box, 2, 2, 1, 8)
	se, _ := NewSeries(unsteady, d, 9)
	unbounded := NewTracer(se, integrate.Options{Tol: 1e-6, HMax: 0.05}, 0)
	unbounded.Trace(0, vec.Of(0.5, 0, 0), 0, 100000)
	if unbounded.Purges != 0 {
		t.Errorf("unbounded tracer purged %d", unbounded.Purges)
	}

	tight := NewTracer(se, integrate.Options{Tol: 1e-6, HMax: 0.05}, 2)
	tight.Trace(0, vec.Of(0.5, 0, 0), 0, 100000)
	if tight.Purges == 0 {
		t.Error("tight cache never purged")
	}
	if tight.Loads <= unbounded.Loads {
		t.Errorf("tight cache loads (%d) not above unbounded (%d)", tight.Loads, unbounded.Loads)
	}
}

func TestTraceOutsideDomain(t *testing.T) {
	se := unitSeries(t, switchField{}, 2, 3)
	tr := NewTracer(se, integrate.Options{}, 0)
	sl := tr.Trace(3, vec.Of(5, 5, 5), 0, 100)
	if sl.Status != trace.OutOfBounds || len(sl.Points) != 1 {
		t.Errorf("outside seed: %+v", sl)
	}
}

func TestTraceMaxSteps(t *testing.T) {
	se := unitSeries(t, switchField{}, 2, 3)
	tr := NewTracer(se, integrate.Options{HMax: 0.001}, 0)
	sl := tr.Trace(0, vec.Of(0.1, 0.1, 0.5), 0, 25)
	if sl.Status != trace.MaxedOut || sl.Steps != 25 {
		t.Errorf("maxed: status=%v steps=%d", sl.Status, sl.Steps)
	}
}

func TestAdvectTMatchesAdvectOnSteadyField(t *testing.T) {
	// On a steady field, the time-dependent solver must agree with the
	// autonomous one.
	f := field.DefaultABC()
	lim := integrate.AdvectLimits{
		Bounds:   vec.Box(vec.Of(-100, -100, -100), vec.Of(100, 100, 100)),
		MaxSteps: 200,
	}
	sA := integrate.NewDoPri5(integrate.Options{Tol: 1e-7})
	rA := sA.Advect(f, vec.Of(1, 1, 1), 0, lim)
	sT := integrate.NewDoPri5(integrate.Options{Tol: 1e-7})
	rT := sT.AdvectT(integrate.TimeEvalFunc(func(p vec.V3, _ float64) vec.V3 { return f.Eval(p) }),
		vec.Of(1, 1, 1), 0, lim)
	if rA.P.Dist(rT.P) > 1e-12 || rA.Steps != rT.Steps {
		t.Errorf("AdvectT diverged: %v vs %v (%d vs %d steps)", rT.P, rA.P, rT.Steps, rA.Steps)
	}
}

func TestAdvectTTimeDependentAccuracy(t *testing.T) {
	// dx/dt = (t+0.5, 0, 0) has exact solution x(T) = T²/2 + T/2:
	// verifies the solver samples stage times correctly (an autonomous
	// solver frozen at window starts would get this wrong).
	rhs := integrate.TimeEvalFunc(func(_ vec.V3, t float64) vec.V3 { return vec.Of(t+0.5, 0, 0) })
	s := integrate.NewDoPri5(integrate.Options{Tol: 1e-9, HMax: 0.1})
	res := s.AdvectT(rhs, vec.Of(0, 0, 0), 0, integrate.AdvectLimits{
		Bounds:  vec.Box(vec.Of(-10, -10, -10), vec.Of(10, 10, 10)),
		MaxTime: 2,
	})
	want := 3.0 // T²/2 + T/2 at T=2
	if math.Abs(res.P.X-want) > 1e-7 {
		t.Errorf("x(2) = %g, want %g", res.P.X, want)
	}
	if math.Abs(res.T-2) > 1e-12 {
		t.Errorf("landed at t=%g, want exactly 2", res.T)
	}
}
