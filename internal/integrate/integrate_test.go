package integrate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/vec"
)

var bigBox = vec.Box(vec.Of(-100, -100, -100), vec.Of(100, 100, 100))

// advectFor integrates until time T with no spatial bound.
func advectFor(s *DoPri5, f Evaluator, p0 vec.V3, T float64) AdvectResult {
	return s.Advect(f, p0, 0, AdvectLimits{Bounds: bigBox, MaxTime: T})
}

func TestDoPri5UniformFieldExact(t *testing.T) {
	f := field.Uniform{V: vec.Of(1, 2, 3), Box: bigBox}
	s := NewDoPri5(Options{Tol: 1e-8, HMax: 0.1})
	res := advectFor(s, f, vec.Of(0, 0, 0), 1)
	// Constant fields are integrated exactly; final time may slightly
	// overshoot T (stopping happens after the step crosses it), so compare
	// against the actual final time.
	want := vec.Of(1, 2, 3).Scale(res.T)
	if res.P.Dist(want) > 1e-9 {
		t.Errorf("P = %v at t=%g, want %v", res.P, res.T, want)
	}
	if res.Reason != StopMaxTime {
		t.Errorf("Reason = %v", res.Reason)
	}
}

func TestDoPri5RotationAccuracy(t *testing.T) {
	f := field.Rotation{Omega: 1, Box: bigBox}
	s := NewDoPri5(Options{Tol: 1e-9, HMax: 0.05})
	p0 := vec.Of(1, 0, 0)
	res := advectFor(s, f, p0, 2*math.Pi)
	want := f.Exact(p0, res.T)
	if d := res.P.Dist(want); d > 1e-6 {
		t.Errorf("after one revolution, error = %g", d)
	}
	// The radius is conserved by the exact flow.
	if r := res.P.Norm(); math.Abs(r-1) > 1e-6 {
		t.Errorf("radius drifted to %g", r)
	}
}

func TestDoPri5SaddleAccuracy(t *testing.T) {
	f := field.Saddle{Box: bigBox}
	s := NewDoPri5(Options{Tol: 1e-10, HMax: 0.05})
	p0 := vec.Of(0.5, 2, 0.25)
	res := advectFor(s, f, p0, 1.5)
	want := f.Exact(p0, res.T)
	if d := res.P.Dist(want); d > 1e-6 {
		t.Errorf("saddle error = %g (P=%v want %v)", d, res.P, want)
	}
}

func TestDoPri5ToleranceControlsError(t *testing.T) {
	f := field.Rotation{Omega: 1, Box: bigBox}
	p0 := vec.Of(1, 0, 0)
	errAt := func(tol float64) float64 {
		s := NewDoPri5(Options{Tol: tol})
		res := advectFor(s, f, p0, math.Pi)
		return res.P.Dist(f.Exact(p0, res.T))
	}
	loose := errAt(1e-4)
	tight := errAt(1e-9)
	if tight >= loose {
		t.Errorf("tightening tolerance did not reduce error: %g vs %g", tight, loose)
	}
	if tight > 1e-5 {
		t.Errorf("tight-tolerance error too large: %g", tight)
	}
}

func TestDoPri5AdaptiveUsesFewerStepsThanFixed(t *testing.T) {
	// On a smooth field the adaptive solver should take large steps where
	// it can: far fewer steps than a fixed step sized for the same
	// accuracy.
	f := field.Rotation{Omega: 1, Box: bigBox}
	s := NewDoPri5(Options{Tol: 1e-6})
	res := advectFor(s, f, vec.Of(1, 0, 0), 2*math.Pi)
	if res.Steps > 400 {
		t.Errorf("adaptive solver took %d steps for one revolution", res.Steps)
	}
	if res.Steps < 5 {
		t.Errorf("suspiciously few steps: %d", res.Steps)
	}
}

func TestDoPri5StopOutOfBlock(t *testing.T) {
	f := field.Uniform{V: vec.Of(1, 0, 0), Box: bigBox}
	s := NewDoPri5(Options{HMax: 0.01})
	blk := vec.Box(vec.Of(0, 0, 0), vec.Of(0.5, 1, 1))
	res := s.Advect(f, vec.Of(0.1, 0.5, 0.5), 0, AdvectLimits{Bounds: blk})
	if res.Reason != StopOutOfBlock {
		t.Fatalf("Reason = %v", res.Reason)
	}
	if res.P.X < 0.5 {
		t.Errorf("stopped inside the block at %v", res.P)
	}
	if res.P.X > 0.6 {
		t.Errorf("overshot block boundary badly: %v", res.P)
	}
}

func TestDoPri5StopMaxSteps(t *testing.T) {
	f := field.Rotation{Omega: 1, Box: bigBox}
	s := NewDoPri5(Options{})
	res := s.Advect(f, vec.Of(1, 0, 0), 0, AdvectLimits{Bounds: bigBox, MaxSteps: 7})
	if res.Reason != StopMaxSteps || res.Steps != 7 {
		t.Errorf("Reason=%v Steps=%d", res.Reason, res.Steps)
	}
	if len(res.Points) != 7 {
		t.Errorf("geometry has %d points, want 7", len(res.Points))
	}
}

func TestDoPri5StopCritical(t *testing.T) {
	// The saddle's stable manifold runs into the origin: seeding on the
	// y axis decays toward zero speed.
	f := field.Saddle{Box: bigBox}
	s := NewDoPri5(Options{MinSpeed: 1e-4, HMax: 0.5})
	res := s.Advect(f, vec.Of(0, 1, 0), 0, AdvectLimits{Bounds: bigBox, MaxSteps: 100000})
	if res.Reason != StopCritical {
		t.Fatalf("Reason = %v (P=%v)", res.Reason, res.P)
	}
	if res.P.Norm() > 1e-3 {
		t.Errorf("stopped far from critical point: %v", res.P)
	}
}

func TestDoPri5NonFiniteField(t *testing.T) {
	evil := EvalFunc(func(p vec.V3) vec.V3 {
		if p.X > 0.5 {
			return vec.Of(math.NaN(), 0, 0)
		}
		return vec.Of(1, 0, 0)
	})
	s := NewDoPri5(Options{HMax: 0.05})
	res := s.Advect(evil, vec.Of(0, 0, 0), 0, AdvectLimits{Bounds: bigBox, MaxSteps: 1000})
	if res.Reason != StopError {
		t.Fatalf("Reason = %v", res.Reason)
	}
}

func TestDoPri5ResumeMatchesContinuous(t *testing.T) {
	// Suspending a solver mid-run (as happens when a streamline migrates
	// between processors) and resuming with the same state must produce
	// the same trajectory as running straight through.
	f := field.DefaultABC()
	p0 := vec.Of(1, 1, 1)

	whole := NewDoPri5(Options{Tol: 1e-7})
	resWhole := whole.Advect(f, p0, 0, AdvectLimits{Bounds: bigBox, MaxSteps: 200})

	s1 := NewDoPri5(Options{Tol: 1e-7})
	r1 := s1.Advect(f, p0, 0, AdvectLimits{Bounds: bigBox, MaxSteps: 120})
	s2 := NewDoPri5(Options{Tol: 1e-7})
	s2.H = s1.H // hand the solver state over
	r2 := s2.Advect(f, r1.P, r1.T, AdvectLimits{Bounds: bigBox, MaxSteps: 80})

	if d := r2.P.Dist(resWhole.P); d > 1e-12 {
		t.Errorf("resumed trajectory diverged by %g", d)
	}
	if math.Abs(r2.T-resWhole.T) > 1e-12 {
		t.Errorf("resumed time diverged: %g vs %g", r2.T, resWhole.T)
	}
}

func TestDoPri5GeometryContinuity(t *testing.T) {
	f := field.DefaultABC()
	s := NewDoPri5(Options{Tol: 1e-6})
	res := s.Advect(f, vec.Of(2, 2, 2), 0, AdvectLimits{Bounds: bigBox, MaxSteps: 300})
	prev := vec.Of(2, 2, 2)
	for i, p := range res.Points {
		if step := p.Dist(prev); step > 1.0 {
			t.Fatalf("geometry jump of %g at point %d", step, i)
		}
		prev = p
	}
}

func TestRK4FourthOrderConvergence(t *testing.T) {
	f := field.Rotation{Omega: 1, Box: bigBox}
	p0 := vec.Of(1, 0, 0)
	T := 1.0
	errAt := func(h float64) float64 {
		r := RK4{H: h}
		p, tm := p0, 0.0
		for tm < T-h/2 {
			p, tm = r.Step(f, p, tm)
		}
		return p.Dist(f.Exact(p0, tm))
	}
	e1 := errAt(0.1)
	e2 := errAt(0.05)
	order := math.Log2(e1 / e2)
	if order < 3.5 || order > 4.5 {
		t.Errorf("RK4 observed order %g (errors %g, %g)", order, e1, e2)
	}
}

func TestEulerFirstOrderConvergence(t *testing.T) {
	f := field.Rotation{Omega: 1, Box: bigBox}
	p0 := vec.Of(1, 0, 0)
	T := 1.0
	errAt := func(h float64) float64 {
		e := Euler{H: h}
		p, tm := p0, 0.0
		for tm < T-h/2 {
			p, tm = e.Step(f, p, tm)
		}
		return p.Dist(f.Exact(p0, tm))
	}
	e1 := errAt(0.01)
	e2 := errAt(0.005)
	order := math.Log2(e1 / e2)
	if order < 0.7 || order > 1.3 {
		t.Errorf("Euler observed order %g (errors %g, %g)", order, e1, e2)
	}
}

func TestDoPri5BeatsEulerAtEqualWork(t *testing.T) {
	f := field.Rotation{Omega: 1, Box: bigBox}
	p0 := vec.Of(1, 0, 0)
	s := NewDoPri5(Options{Tol: 1e-8})
	res := advectFor(s, f, p0, math.Pi)
	dpErr := res.P.Dist(f.Exact(p0, res.T))
	// Give Euler the same number of field evaluations.
	h := math.Pi / float64(res.Evals)
	e := Euler{H: h}
	p, tm := p0, 0.0
	for tm < math.Pi-h/2 {
		p, tm = e.Step(f, p, tm)
	}
	eulErr := p.Dist(f.Exact(p0, tm))
	if dpErr >= eulErr {
		t.Errorf("DoPri5 (%g) not better than Euler (%g) at equal work", dpErr, eulErr)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Tol <= 0 || o.HMin <= 0 || o.MinSpeed <= 0 {
		t.Errorf("Defaults left zero values: %+v", o)
	}
	// Explicit values survive.
	o = Options{Tol: 1e-3, HMin: 1e-4, MinSpeed: 1e-5}.Defaults()
	if o.Tol != 1e-3 || o.HMin != 1e-4 || o.MinSpeed != 1e-5 {
		t.Errorf("Defaults clobbered explicit values: %+v", o)
	}
}

func TestStopReasonStrings(t *testing.T) {
	reasons := []StopReason{StopNone, StopOutOfBlock, StopMaxSteps, StopMaxTime, StopCritical, StopError, StopReason(99)}
	for _, r := range reasons {
		if r.String() == "" {
			t.Errorf("empty string for reason %d", int(r))
		}
	}
}

func TestPropEnergyConservationOnRotation(t *testing.T) {
	// Rotation preserves distance from the z axis; the adaptive solver
	// must track that within tolerance from random starts.
	f := field.Rotation{Omega: 2, Box: bigBox}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 50; i++ {
		p0 := vec.Of(rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*2-1)
		r0 := math.Hypot(p0.X, p0.Y)
		if r0 < 0.1 {
			continue
		}
		s := NewDoPri5(Options{Tol: 1e-8})
		res := advectFor(s, f, p0, 3)
		r1 := math.Hypot(res.P.X, res.P.Y)
		if math.Abs(r1-r0) > 1e-4 {
			t.Fatalf("radius drift %g from %v", math.Abs(r1-r0), p0)
		}
	}
}

// TestAdvectTMatchesAdvectOnAutonomousField pins the non-autonomous
// entry points against the autonomous ones: wrapping a steady field as a
// TimeEvaluator that ignores t must reproduce Advect's geometry exactly,
// step for step, through both the interface entry (AdvectT) and the
// generic one (AdvectTWith).
func TestAdvectTMatchesAdvectOnAutonomousField(t *testing.T) {
	f := field.DefaultSupernova()
	lim := AdvectLimits{Bounds: f.Bounds(), MaxSteps: 200}
	seed := vec.Of(0.3, 0.1, 0.05)

	sA := NewDoPri5(Options{Tol: 1e-6, HMax: 0.01})
	rA := sA.Advect(f, seed, 0, lim)

	sT := NewDoPri5(Options{Tol: 1e-6, HMax: 0.01})
	rT := sT.AdvectT(TimeEvalFunc(func(p vec.V3, _ float64) vec.V3 { return f.Eval(p) }), seed, 0, lim)

	if rA.P != rT.P || rA.Steps != rT.Steps || rA.Reason != rT.Reason {
		t.Errorf("AdvectT diverged from Advect: %v/%d/%v vs %v/%d/%v",
			rT.P, rT.Steps, rT.Reason, rA.P, rA.Steps, rA.Reason)
	}
	if len(rA.Points) != len(rT.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(rT.Points), len(rA.Points))
	}
	for i := range rA.Points {
		if rA.Points[i] != rT.Points[i] {
			t.Fatalf("geometry diverged at point %d: %v vs %v", i, rT.Points[i], rA.Points[i])
		}
	}
}

// TestAdvectTStopsOnLimits covers the non-autonomous loop's stop
// conditions: the absolute MaxTime horizon (with the final step clamped
// to land exactly on it) and the out-of-bounds exit.
func TestAdvectTStopsOnLimits(t *testing.T) {
	uniform := TimeEvalFunc(func(vec.V3, float64) vec.V3 { return vec.Of(1, 0, 0) })
	s := NewDoPri5(Options{Tol: 1e-8, HMax: 0.1})
	res := s.AdvectT(uniform, vec.Of(0, 0, 0), 0, AdvectLimits{Bounds: bigBox, MaxTime: 1})
	if res.Reason != StopMaxTime || res.T != 1 {
		t.Errorf("reason %v at t=%g, want StopMaxTime at exactly 1", res.Reason, res.T)
	}

	s = NewDoPri5(Options{Tol: 1e-8, HMax: 0.1})
	tiny := vec.Box(vec.Of(-1, -1, -1), vec.Of(0.05, 1, 1))
	res = s.AdvectT(uniform, vec.Of(0, 0, 0), 0, AdvectLimits{Bounds: tiny, MaxSteps: 100})
	if res.Reason != StopOutOfBlock {
		t.Errorf("reason %v, want StopOutOfBlock", res.Reason)
	}
}

// TestAdvectTNonFiniteField covers the non-autonomous error exits: a
// field that goes NaN mid-trajectory must stop with StopError both at
// the first sample and inside a step.
func TestAdvectTNonFiniteField(t *testing.T) {
	evil := TimeEvalFunc(func(p vec.V3, _ float64) vec.V3 {
		if p.X > 0.5 {
			return vec.Of(math.NaN(), 0, 0)
		}
		return vec.Of(1, 0, 0)
	})
	s := NewDoPri5(Options{Tol: 1e-8, HMax: 0.1})
	res := s.AdvectT(evil, vec.Of(0, 0, 0), 0, AdvectLimits{Bounds: bigBox, MaxSteps: 1000})
	if res.Reason != StopError {
		t.Errorf("reason %v, want StopError", res.Reason)
	}

	s = NewDoPri5(Options{Tol: 1e-8, HMax: 0.1})
	res = s.AdvectT(evil, vec.Of(1, 0, 0), 0, AdvectLimits{Bounds: bigBox, MaxSteps: 10})
	if res.Reason != StopError || res.Steps != 0 {
		t.Errorf("NaN seed: reason %v after %d steps, want immediate StopError", res.Reason, res.Steps)
	}
}

// TestAdvectTMinSpeed covers the critical-point exit of the
// non-autonomous loop.
func TestAdvectTMinSpeed(t *testing.T) {
	still := TimeEvalFunc(func(vec.V3, float64) vec.V3 { return vec.Of(1e-15, 0, 0) })
	s := NewDoPri5(Options{Tol: 1e-8, HMax: 0.1, MinSpeed: 1e-9})
	res := s.AdvectT(still, vec.Of(0, 0, 0), 0, AdvectLimits{Bounds: bigBox, MaxSteps: 10})
	if res.Reason != StopCritical {
		t.Errorf("reason %v, want StopCritical", res.Reason)
	}
}
