package integrate

import (
	"testing"

	"repro/internal/field"
	"repro/internal/vec"
)

// TestAdvectAllocFreeWithBuffer is the allocation regression gate for the
// advect inner loop: with a caller-supplied geometry buffer (the way
// core's workers call it), a steady-state advection must not allocate at
// all — every step runs on the stack plus the reused buffer.
func TestAdvectAllocFreeWithBuffer(t *testing.T) {
	f := field.DefaultThermalHydraulics()
	s := NewDoPri5(Options{Tol: 1e-6, HMax: 0.01})
	lim := AdvectLimits{Bounds: f.Bounds(), MaxSteps: 64}
	var buf []vec.V3
	seed := vec.Of(0.05, 0.43, 0.56)
	run := func() {
		s.H = 0
		lim.Buf = buf
		res := AdvectWith(s, f, seed, 0, lim)
		if res.Steps == 0 {
			t.Fatal("advection made no progress")
		}
		buf = res.Points[:0]
	}
	run() // size the buffer once
	if n := testing.AllocsPerRun(50, run); n > 0 {
		t.Errorf("AdvectWith allocates %.2f times per call with a reused buffer, want 0", n)
	}
}

// TestStepAllocFree gates the single-step entry point the same way: one
// adaptive step through the interface-free generic instantiation must
// not allocate.
func TestStepAllocFree(t *testing.T) {
	f := field.DefaultSupernova()
	s := NewDoPri5(Options{Tol: 1e-6, HMax: 0.01})
	p := vec.Of(0.3, 0.1, 0.05)
	run := func() {
		if _, err := StepWith(s, f, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if n := testing.AllocsPerRun(50, run); n > 0 {
		t.Errorf("StepWith allocates %.2f times per call, want 0", n)
	}
}
