package integrate

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/vec"
)

// Fuzz harnesses for the solver's step-acceptance invariants. The seed
// corpus below runs as ordinary deterministic tests on every `go test`
// (and therefore in CI); `go test -fuzz=FuzzDoPri5Step ./internal/integrate`
// explores further.

// fuzzField picks a finite analytic field from a selector byte.
func fuzzField(sel uint8) Evaluator {
	switch sel % 4 {
	case 0:
		return EvalFunc(field.Rotation{Omega: 1.3}.Eval)
	case 1:
		return EvalFunc(field.DefaultABC().Eval)
	case 2:
		return EvalFunc(field.Saddle{}.Eval)
	default:
		return EvalFunc(field.Uniform{V: vec.Of(0.4, -0.2, 0.1)}.Eval)
	}
}

func clampRange(v, lo, hi float64) float64 {
	v = math.Abs(v)
	if !(v >= lo) || math.IsInf(v, 0) {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func FuzzDoPri5StepAcceptance(f *testing.F) {
	f.Add(1e-6, 0.05, 0.3, -0.4, 0.2, 0.0, uint8(0))
	f.Add(1e-4, 0.0, 1.0, 1.0, 1.0, 0.01, uint8(1))
	f.Add(1e-9, 0.001, -0.7, 0.1, 0.0, 0.5, uint8(2))
	f.Add(1e-2, 0.5, 0.0, 0.0, 0.0, 1e-8, uint8(3))
	f.Add(1e-7, 0.02, 2.9, -2.9, 2.9, 0.0, uint8(1))

	f.Fuzz(func(t *testing.T, tol, hmax, px, py, pz, h0 float64, sel uint8) {
		if !vec.Of(px, py, pz).IsFinite() {
			t.Skip()
		}
		opts := Options{
			Tol:  clampRange(tol, 1e-10, 1e-1),
			HMax: clampRange(hmax, 0, 1),
			H0:   clampRange(h0, 0, 1),
		}
		if opts.HMax == 0 {
			opts.HMax = 0 // no cap is a valid configuration
		}
		ev := fuzzField(sel)
		p := vec.Of(px, py, pz)

		s := NewDoPri5(opts)
		res, err := s.Step(ev, p, 0)
		if err != nil {
			t.Fatalf("finite field returned error: %v", err)
		}
		// Acceptance invariants: the step is accepted, time advances,
		// the position is finite, and the adapted step size respects
		// the configured bounds.
		if !res.Accepted {
			t.Fatal("Step returned without accepting")
		}
		if !(res.T > 0) {
			t.Fatalf("time did not advance: T=%g", res.T)
		}
		if !res.P.IsFinite() {
			t.Fatalf("non-finite position %v", res.P)
		}
		if s.H < s.Opts.HMin {
			t.Fatalf("step size %g below HMin %g", s.H, s.Opts.HMin)
		}
		if s.Opts.HMax > 0 && s.H > s.Opts.HMax {
			t.Fatalf("step size %g above HMax %g", s.H, s.Opts.HMax)
		}
		if res.Evals <= 0 {
			t.Fatal("no field evaluations recorded")
		}

		// Determinism: an identical solver takes the identical step,
		// bit for bit — the property every handoff in core relies on.
		s2 := NewDoPri5(opts)
		res2, err2 := s2.Step(ev, p, 0)
		if err2 != nil || res2.P != res.P || res2.T != res.T || s2.H != s.H {
			t.Fatalf("same state, different step: %+v vs %+v", res, res2)
		}

		// The non-autonomous solver on a time-frozen field must walk the
		// exact same path — this is what makes steady campaigns and
		// pathline campaigns comparable.
		tf := TimeEvalFunc(func(q vec.V3, _ float64) vec.V3 { return ev.Eval(q) })
		s3 := NewDoPri5(opts)
		res3, err3 := s3.StepT(tf, p, 0)
		if err3 != nil || res3.P != res.P || res3.T != res.T || s3.H != s.H {
			t.Fatalf("StepT diverged from Step on a frozen field: %+v vs %+v", res, res3)
		}
	})
}

func FuzzAdvectLimits(f *testing.F) {
	f.Add(1e-6, 0.6, 0.3, -0.4, 0.2, 20, uint8(0))
	f.Add(1e-4, 1.5, 0.9, 0.9, -0.9, 5, uint8(1))
	f.Add(1e-8, 0.05, 0.0, 0.5, 0.0, 50, uint8(2))
	f.Add(1e-3, 2.0, -1.0, 1.0, 1.0, 1, uint8(3))

	f.Fuzz(func(t *testing.T, tol, maxTime, px, py, pz float64, maxSteps int, sel uint8) {
		if !vec.Of(px, py, pz).IsFinite() {
			t.Skip()
		}
		if maxSteps <= 0 || maxSteps > 500 {
			maxSteps = 50
		}
		opts := Options{Tol: clampRange(tol, 1e-10, 1e-1), HMax: 0.1}
		maxTime = clampRange(maxTime, 1e-3, 10)
		ev := fuzzField(sel)
		p := vec.Of(px, py, pz)
		bounds := vec.Box(vec.Of(-50, -50, -50), vec.Of(50, 50, 50))

		s := NewDoPri5(opts)
		res := s.Advect(ev, p, 0, AdvectLimits{Bounds: bounds, MaxSteps: maxSteps, MaxTime: maxTime})
		if res.Steps > maxSteps {
			t.Fatalf("took %d steps, budget %d", res.Steps, maxSteps)
		}
		if res.T > maxTime+1e-9 {
			t.Fatalf("overran the time horizon: T=%g > %g", res.T, maxTime)
		}
		if len(res.Points) != res.Steps {
			t.Fatalf("geometry points %d != accepted steps %d", len(res.Points), res.Steps)
		}
		if !res.P.IsFinite() {
			t.Fatalf("non-finite final position %v", res.P)
		}
		if res.Reason == StopMaxTime && math.Abs(res.T-maxTime) > 1e-9 {
			t.Fatalf("StopMaxTime with T=%g, horizon %g — should land on the horizon", res.T, maxTime)
		}
	})
}
