// Package integrate provides the numerical ODE solvers used to trace
// streamlines: dx/dt = v(x).
//
// The paper (Section 2.1) integrates with "a scheme of Runge-Kutta type
// with adaptive stepsize control as proposed by Dormand and Prince"; this
// package implements that Dormand–Prince 5(4) embedded pair with a
// standard PI step-size controller, plus fixed-step RK4 and Euler
// baselines used by convergence tests.
package integrate

import (
	"errors"
	"math"

	"repro/internal/vec"
)

// Evaluator is the right-hand side of the ODE: a vector field query.
type Evaluator interface {
	Eval(p vec.V3) vec.V3
}

// EvalFunc adapts a plain function to the Evaluator interface.
type EvalFunc func(p vec.V3) vec.V3

// Eval implements Evaluator.
func (f EvalFunc) Eval(p vec.V3) vec.V3 { return f(p) }

// Options controls adaptive integration.
type Options struct {
	// Tol is the per-step error tolerance (absolute, on position).
	Tol float64
	// H0 is the initial step size; 0 picks one from the field magnitude.
	H0 float64
	// HMin is the smallest allowed step; steps clamp here rather than
	// failing, so integration always progresses.
	HMin float64
	// HMax caps the step size; 0 means no cap.
	HMax float64
	// MinSpeed terminates integration when the local field magnitude
	// drops below it (critical-point sink, the paper's "vector field
	// complexity" criterion). 0 applies a small default.
	MinSpeed float64
}

// Defaults fills unset options with production values.
func (o Options) Defaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.HMin <= 0 {
		o.HMin = 1e-7
	}
	if o.MinSpeed <= 0 {
		o.MinSpeed = 1e-9
	}
	return o
}

// StopReason explains why an advection call returned.
type StopReason int

// Stop reasons, from the integrator's perspective. The engine layers its
// own semantics on top (OutOfBlock usually means "hand off to another
// block or processor").
const (
	StopNone       StopReason = iota // still going (internal use)
	StopOutOfBlock                   // left the supplied bounding box
	StopMaxSteps                     // hit the per-call step budget
	StopMaxTime                      // hit the integration-time budget
	StopCritical                     // field magnitude below MinSpeed
	StopError                        // field returned a non-finite value
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopNone:
		return "none"
	case StopOutOfBlock:
		return "out-of-block"
	case StopMaxSteps:
		return "max-steps"
	case StopMaxTime:
		return "max-time"
	case StopCritical:
		return "critical-point"
	case StopError:
		return "error"
	default:
		return "unknown"
	}
}

// ErrNonFinite is returned when the field produces NaN or Inf.
var ErrNonFinite = errors.New("integrate: field returned non-finite value")

// Dormand–Prince RK5(4) coefficients (the DOPRI5 tableau).
var (
	dpA = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	// 5th-order solution weights (same as the last A row: FSAL).
	dpB5 = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
	// 4th-order (embedded) solution weights.
	dpB4 = [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}
)

// DoPri5 is a Dormand–Prince 5(4) adaptive integrator. The zero value is
// not usable; construct with NewDoPri5. A DoPri5 carries per-streamline
// state (current step size) so it can be suspended when a streamline is
// handed to another processor and resumed bit-for-bit identically — the
// solver state is part of what the algorithms communicate.
type DoPri5 struct {
	Opts Options
	// H is the current step size (exported so solver state can be
	// serialized with a streamline, per the paper's §8 note that
	// communicating solver state suffices for many applications).
	H float64
}

// NewDoPri5 returns an integrator with the given options.
func NewDoPri5(opts Options) *DoPri5 {
	return &DoPri5{Opts: opts.Defaults()}
}

// StepResult reports one adaptive step.
type StepResult struct {
	P        vec.V3  // new position
	T        float64 // new integration time
	Evals    int     // field evaluations consumed (including rejected trials)
	Accepted bool
}

// Step advances one accepted adaptive step from (p, t), updating the
// internal step size. It returns ErrNonFinite if the field misbehaves.
func (s *DoPri5) Step(f Evaluator, p vec.V3, t float64) (StepResult, error) {
	o := s.Opts
	if s.H == 0 {
		s.H = s.initialStep(f, p)
	}
	evals := 0
	var k [7]vec.V3
	for try := 0; try < 64; try++ {
		h := s.H
		k[0] = f.Eval(p)
		evals++
		if !k[0].IsFinite() {
			return StepResult{Evals: evals}, ErrNonFinite
		}
		for i := 1; i < 7; i++ {
			q := p
			for j := 0; j < i; j++ {
				if dpA[i][j] != 0 {
					q = q.Add(k[j].Scale(h * dpA[i][j]))
				}
			}
			k[i] = f.Eval(q)
			evals++
			if !k[i].IsFinite() {
				return StepResult{Evals: evals}, ErrNonFinite
			}
		}
		var p5, p4 vec.V3
		p5, p4 = p, p
		for i := 0; i < 7; i++ {
			if dpB5[i] != 0 {
				p5 = p5.Add(k[i].Scale(h * dpB5[i]))
			}
			if dpB4[i] != 0 {
				p4 = p4.Add(k[i].Scale(h * dpB4[i]))
			}
		}
		errEst := p5.Dist(p4)
		if errEst <= o.Tol || h <= o.HMin {
			// Accept; grow the step for next time (classic 0.9 safety,
			// order-5 exponent).
			s.H = nextStep(h, errEst, o)
			return StepResult{P: p5, T: t + h, Evals: evals, Accepted: true}, nil
		}
		// Reject: shrink and retry.
		s.H = nextStep(h, errEst, o)
		if s.H >= h { // ensure progress on pathological error estimates
			s.H = h / 2
		}
		if s.H < o.HMin {
			s.H = o.HMin
		}
	}
	// Tolerance unreachable: accept a minimal step rather than spinning.
	s.H = o.HMin
	h := s.H
	v := f.Eval(p)
	evals++
	if !v.IsFinite() {
		return StepResult{Evals: evals}, ErrNonFinite
	}
	return StepResult{P: p.Add(v.Scale(h)), T: t + h, Evals: evals, Accepted: true}, nil
}

func nextStep(h, errEst float64, o Options) float64 {
	var factor float64
	if errEst == 0 {
		factor = 5
	} else {
		factor = 0.9 * math.Pow(o.Tol/errEst, 0.2)
		if factor > 5 {
			factor = 5
		}
		if factor < 0.1 {
			factor = 0.1
		}
	}
	h *= factor
	if o.HMax > 0 && h > o.HMax {
		h = o.HMax
	}
	if h < o.HMin {
		h = o.HMin
	}
	return h
}

// initialStep picks a starting step from the local field magnitude so the
// first step moves a small fraction of a unit length.
func (s *DoPri5) initialStep(f Evaluator, p vec.V3) float64 {
	v := f.Eval(p).Norm()
	if v < 1e-12 {
		return 1e-3
	}
	h := 0.01 / v
	if s.Opts.HMax > 0 && h > s.Opts.HMax {
		h = s.Opts.HMax
	}
	if h < s.Opts.HMin {
		h = s.Opts.HMin
	}
	return h
}

// AdvectLimits bounds one Advect call.
type AdvectLimits struct {
	Bounds   vec.AABB // stop when the position leaves this box
	MaxSteps int      // stop after this many accepted steps (0 = unlimited)
	MaxTime  float64  // stop at this integration time (0 = unlimited)
}

// AdvectResult reports an Advect call.
type AdvectResult struct {
	P      vec.V3     // final position
	T      float64    // final integration time
	Steps  int        // accepted steps taken
	Evals  int        // field evaluations consumed
	Reason StopReason // why advection stopped
	Points []vec.V3   // positions after each accepted step (geometry)
}

// Advect integrates from (p, t) until a limit is reached, collecting the
// intermediate geometry. The caller owns domain semantics: typically
// Bounds is the current block's box, so StopOutOfBlock signals a block
// transition.
func (s *DoPri5) Advect(f Evaluator, p vec.V3, t float64, lim AdvectLimits) AdvectResult {
	res := AdvectResult{P: p, T: t}
	for {
		if lim.MaxSteps > 0 && res.Steps >= lim.MaxSteps {
			res.Reason = StopMaxSteps
			return res
		}
		if lim.MaxTime > 0 && res.T >= lim.MaxTime {
			res.Reason = StopMaxTime
			return res
		}
		if v := f.Eval(res.P); v.Norm() < s.Opts.MinSpeed {
			res.Evals++
			res.Reason = StopCritical
			return res
		}
		res.Evals++ // the speed check above
		if lim.MaxTime > 0 {
			// Land exactly on the time horizon: flow-map analyses (FTLE)
			// need neighboring trajectories to stop at identical times,
			// and epoch-bounded pathline advection must not overshoot
			// into the next time slab. A fresh solver picks its initial
			// step first so even the very first step is clamped.
			if s.H == 0 {
				s.H = s.initialStep(f, res.P)
			}
			if remain := lim.MaxTime - res.T; s.H > remain {
				s.H = remain
			}
		}
		step, err := s.Step(f, res.P, res.T)
		res.Evals += step.Evals
		if err != nil {
			res.Reason = StopError
			return res
		}
		res.P = step.P
		res.T = step.T
		res.Steps++
		res.Points = append(res.Points, step.P)
		if !lim.Bounds.Contains(res.P) {
			res.Reason = StopOutOfBlock
			return res
		}
	}
}

// TimeEvaluator is the right-hand side of the non-autonomous ODE
// dx/dt = v(x, t) used for pathlines in time-varying fields (the paper's
// Section 8 extension).
type TimeEvaluator interface {
	EvalAt(p vec.V3, t float64) vec.V3
}

// TimeEvalFunc adapts a function to TimeEvaluator.
type TimeEvalFunc func(p vec.V3, t float64) vec.V3

// EvalAt implements TimeEvaluator.
func (f TimeEvalFunc) EvalAt(p vec.V3, t float64) vec.V3 { return f(p, t) }

// frozen restricts a TimeEvaluator to one instant, for reusing the
// autonomous machinery stage-by-stage.
type frozen struct {
	f TimeEvaluator
	t float64
}

func (fr frozen) Eval(p vec.V3) vec.V3 { return fr.f.EvalAt(p, fr.t) }

// dpC are the Dormand–Prince stage time fractions (row sums of dpA).
var dpC = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}

// StepT advances one accepted adaptive step of the non-autonomous system,
// evaluating the field at the proper stage times t + c_i·h.
func (s *DoPri5) StepT(f TimeEvaluator, p vec.V3, t float64) (StepResult, error) {
	o := s.Opts
	if s.H == 0 {
		s.H = s.initialStep(frozen{f, t}, p)
	}
	evals := 0
	var k [7]vec.V3
	for try := 0; try < 64; try++ {
		h := s.H
		k[0] = f.EvalAt(p, t)
		evals++
		if !k[0].IsFinite() {
			return StepResult{Evals: evals}, ErrNonFinite
		}
		for i := 1; i < 7; i++ {
			q := p
			for j := 0; j < i; j++ {
				if dpA[i][j] != 0 {
					q = q.Add(k[j].Scale(h * dpA[i][j]))
				}
			}
			k[i] = f.EvalAt(q, t+dpC[i]*h)
			evals++
			if !k[i].IsFinite() {
				return StepResult{Evals: evals}, ErrNonFinite
			}
		}
		var p5, p4 vec.V3
		p5, p4 = p, p
		for i := 0; i < 7; i++ {
			if dpB5[i] != 0 {
				p5 = p5.Add(k[i].Scale(h * dpB5[i]))
			}
			if dpB4[i] != 0 {
				p4 = p4.Add(k[i].Scale(h * dpB4[i]))
			}
		}
		errEst := p5.Dist(p4)
		if errEst <= o.Tol || h <= o.HMin {
			s.H = nextStep(h, errEst, o)
			return StepResult{P: p5, T: t + h, Evals: evals, Accepted: true}, nil
		}
		s.H = nextStep(h, errEst, o)
		if s.H >= h {
			s.H = h / 2
		}
		if s.H < o.HMin {
			s.H = o.HMin
		}
	}
	s.H = o.HMin
	v := f.EvalAt(p, t)
	evals++
	if !v.IsFinite() {
		return StepResult{Evals: evals}, ErrNonFinite
	}
	return StepResult{P: p.Add(v.Scale(s.H)), T: t + s.H, Evals: evals, Accepted: true}, nil
}

// AdvectT integrates the non-autonomous system from (p, t) under the same
// limits as Advect; MaxTime is the absolute time horizon.
func (s *DoPri5) AdvectT(f TimeEvaluator, p vec.V3, t float64, lim AdvectLimits) AdvectResult {
	res := AdvectResult{P: p, T: t}
	for {
		if lim.MaxSteps > 0 && res.Steps >= lim.MaxSteps {
			res.Reason = StopMaxSteps
			return res
		}
		if lim.MaxTime > 0 && res.T >= lim.MaxTime {
			res.Reason = StopMaxTime
			return res
		}
		if v := f.EvalAt(res.P, res.T); v.Norm() < s.Opts.MinSpeed {
			res.Evals++
			res.Reason = StopCritical
			return res
		}
		res.Evals++
		if lim.MaxTime > 0 {
			// Same first-step horizon clamp as Advect.
			if s.H == 0 {
				s.H = s.initialStep(frozen{f, res.T}, res.P)
			}
			if remain := lim.MaxTime - res.T; s.H > remain {
				s.H = remain
			}
		}
		step, err := s.StepT(f, res.P, res.T)
		res.Evals += step.Evals
		if err != nil {
			res.Reason = StopError
			return res
		}
		res.P = step.P
		res.T = step.T
		res.Steps++
		res.Points = append(res.Points, step.P)
		if !lim.Bounds.Contains(res.P) {
			res.Reason = StopOutOfBlock
			return res
		}
	}
}

// RK4 is a classical fixed-step fourth-order Runge–Kutta integrator, used
// as a baseline in convergence tests.
type RK4 struct{ H float64 }

// Step advances one fixed step.
func (r RK4) Step(f Evaluator, p vec.V3, t float64) (vec.V3, float64) {
	h := r.H
	k1 := f.Eval(p)
	k2 := f.Eval(p.Add(k1.Scale(h / 2)))
	k3 := f.Eval(p.Add(k2.Scale(h / 2)))
	k4 := f.Eval(p.Add(k3.Scale(h)))
	inc := k1.Add(k2.Scale(2)).Add(k3.Scale(2)).Add(k4).Scale(h / 6)
	return p.Add(inc), t + h
}

// Euler is the first-order explicit Euler integrator, used as a baseline
// in convergence tests.
type Euler struct{ H float64 }

// Step advances one fixed step.
func (e Euler) Step(f Evaluator, p vec.V3, t float64) (vec.V3, float64) {
	return p.Add(f.Eval(p).Scale(e.H)), t + e.H
}
