// Package integrate provides the numerical ODE solvers used to trace
// streamlines: dx/dt = v(x).
//
// The paper (Section 2.1) integrates with "a scheme of Runge-Kutta type
// with adaptive stepsize control as proposed by Dormand and Prince"; this
// package implements that Dormand–Prince 5(4) embedded pair with a
// standard PI step-size controller, plus fixed-step RK4 and Euler
// baselines used by convergence tests.
//
// The hot loop is written for the simulated campaigns, where field
// evaluation dominates the run time (DESIGN.md §12): the stages are
// unrolled against the tableau constants, the step core is generic over
// the evaluator so callers can instantiate it at a concrete field type
// (no interface dispatch), and the first-same-as-last (FSAL) property of
// the Dormand–Prince pair is exploited to evaluate the field six — not
// eight — times per accepted step. Every reuse returns bit-for-bit the
// value the old code recomputed, so the golden geometry digests cannot
// move.
package integrate

import (
	"errors"
	"math"

	"repro/internal/vec"
)

// Evaluator is the right-hand side of the ODE: a vector field query.
type Evaluator interface {
	Eval(p vec.V3) vec.V3
}

// EvalFunc adapts a plain function to the Evaluator interface.
type EvalFunc func(p vec.V3) vec.V3

// Eval implements Evaluator.
func (f EvalFunc) Eval(p vec.V3) vec.V3 { return f(p) }

// Options controls adaptive integration.
type Options struct {
	// Tol is the per-step error tolerance (absolute, on position).
	Tol float64
	// H0 is the initial step size; 0 picks one from the field magnitude.
	H0 float64
	// HMin is the smallest allowed step; steps clamp here rather than
	// failing, so integration always progresses.
	HMin float64
	// HMax caps the step size; 0 means no cap.
	HMax float64
	// MinSpeed terminates integration when the local field magnitude
	// drops below it (critical-point sink, the paper's "vector field
	// complexity" criterion). 0 applies a small default.
	MinSpeed float64
}

// Defaults fills unset options with production values.
func (o Options) Defaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.HMin <= 0 {
		o.HMin = 1e-7
	}
	if o.MinSpeed <= 0 {
		o.MinSpeed = 1e-9
	}
	return o
}

// StopReason explains why an advection call returned.
type StopReason int

// Stop reasons, from the integrator's perspective. The engine layers its
// own semantics on top (OutOfBlock usually means "hand off to another
// block or processor").
const (
	StopNone       StopReason = iota // still going (internal use)
	StopOutOfBlock                   // left the supplied bounding box
	StopMaxSteps                     // hit the per-call step budget
	StopMaxTime                      // hit the integration-time budget
	StopCritical                     // field magnitude below MinSpeed
	StopError                        // field returned a non-finite value
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopNone:
		return "none"
	case StopOutOfBlock:
		return "out-of-block"
	case StopMaxSteps:
		return "max-steps"
	case StopMaxTime:
		return "max-time"
	case StopCritical:
		return "critical-point"
	case StopError:
		return "error"
	default:
		return "unknown"
	}
}

// ErrNonFinite is returned when the field produces NaN or Inf.
var ErrNonFinite = errors.New("integrate: field returned non-finite value")

// Dormand–Prince RK5(4) tableau (the DOPRI5 coefficients), as untyped
// constants so the unrolled stages below fold them into immediates. The
// sixth A row doubles as the 5th-order weights (FSAL); cB4* are the
// embedded 4th-order weights; cC* the stage time fractions.
const (
	cA10 = 1.0 / 5
	cA20 = 3.0 / 40
	cA21 = 9.0 / 40
	cA30 = 44.0 / 45
	cA31 = -56.0 / 15
	cA32 = 32.0 / 9
	cA40 = 19372.0 / 6561
	cA41 = -25360.0 / 2187
	cA42 = 64448.0 / 6561
	cA43 = -212.0 / 729
	cA50 = 9017.0 / 3168
	cA51 = -355.0 / 33
	cA52 = 46732.0 / 5247
	cA53 = 49.0 / 176
	cA54 = -5103.0 / 18656
	cA60 = 35.0 / 384
	cA62 = 500.0 / 1113
	cA63 = 125.0 / 192
	cA64 = -2187.0 / 6784
	cA65 = 11.0 / 84

	cB40 = 5179.0 / 57600
	cB42 = 7571.0 / 16695
	cB43 = 393.0 / 640
	cB44 = -92097.0 / 339200
	cB45 = 187.0 / 2100
	cB46 = 1.0 / 40

	cC1 = 1.0 / 5
	cC2 = 3.0 / 10
	cC3 = 4.0 / 5
	cC4 = 8.0 / 9
)

// DoPri5 is a Dormand–Prince 5(4) adaptive integrator. The zero value is
// not usable; construct with NewDoPri5. A DoPri5 carries per-streamline
// state (current step size) so it can be suspended when a streamline is
// handed to another processor and resumed bit-for-bit identically — the
// solver state is part of what the algorithms communicate.
type DoPri5 struct {
	Opts Options
	// H is the current step size (exported so solver state can be
	// serialized with a streamline, per the paper's §8 note that
	// communicating solver state suffices for many applications).
	H float64
}

// NewDoPri5 returns an integrator with the given options.
func NewDoPri5(opts Options) *DoPri5 {
	return &DoPri5{Opts: opts.Defaults()}
}

// StepResult reports one adaptive step.
type StepResult struct {
	P        vec.V3  // new position
	T        float64 // new integration time
	Evals    int     // field evaluations consumed (including rejected trials)
	Accepted bool
}

// Step advances one accepted adaptive step from (p, t), updating the
// internal step size. It returns ErrNonFinite if the field misbehaves.
func (s *DoPri5) Step(f Evaluator, p vec.V3, t float64) (StepResult, error) {
	return StepWith(s, f, p, t)
}

// StepWith is Step generic over the evaluator type, so hot loops can
// instantiate it at a concrete field type and skip interface dispatch.
// The arithmetic is identical to Step for every instantiation.
func StepWith[E Evaluator](s *DoPri5, f E, p vec.V3, t float64) (StepResult, error) {
	k0 := f.Eval(p)
	if !k0.IsFinite() {
		return StepResult{Evals: 1}, ErrNonFinite
	}
	if s.H == 0 {
		s.H = s.initialStepFrom(k0)
	}
	res, _, _, err := stepFrom(s, f, p, t, k0)
	res.Evals++ // k0 above
	return res, err
}

// stepFrom is the adaptive-step core: it takes k0 = f.Eval(p) from the
// caller (not counted in its Evals) so the value can be shared with the
// caller's speed check and, via the FSAL property, with the previous
// accepted step's final stage. k0 does not depend on the trial step
// size, so rejected trials reuse it instead of re-evaluating.
//
// The sixth stage's sample point is accumulated with exactly the
// 5th-order weight sequence, so it IS the accepted position p5
// bit-for-bit; stepFrom therefore computes p5 once, evaluates the final
// stage there, and on acceptance returns that value as k6 (with
// fsal=true) — bit-identical to what the next step's k0 would be.
func stepFrom[E Evaluator](s *DoPri5, f E, p vec.V3, t float64, k0 vec.V3) (res StepResult, k6 vec.V3, fsal bool, err error) {
	o := s.Opts
	evals := 0
	for try := 0; try < 64; try++ {
		h := s.H
		q := p.Add(k0.Scale(h * cA10))
		k1 := f.Eval(q)
		evals++
		if !k1.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		q = p.Add(k0.Scale(h * cA20)).Add(k1.Scale(h * cA21))
		k2 := f.Eval(q)
		evals++
		if !k2.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		q = p.Add(k0.Scale(h * cA30)).Add(k1.Scale(h * cA31)).Add(k2.Scale(h * cA32))
		k3 := f.Eval(q)
		evals++
		if !k3.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		q = p.Add(k0.Scale(h * cA40)).Add(k1.Scale(h * cA41)).Add(k2.Scale(h * cA42)).Add(k3.Scale(h * cA43))
		k4 := f.Eval(q)
		evals++
		if !k4.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		q = p.Add(k0.Scale(h * cA50)).Add(k1.Scale(h * cA51)).Add(k2.Scale(h * cA52)).Add(k3.Scale(h * cA53)).Add(k4.Scale(h * cA54))
		k5 := f.Eval(q)
		evals++
		if !k5.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		p5 := p.Add(k0.Scale(h * cA60)).Add(k2.Scale(h * cA62)).Add(k3.Scale(h * cA63)).Add(k4.Scale(h * cA64)).Add(k5.Scale(h * cA65))
		k6v := f.Eval(p5)
		evals++
		if !k6v.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		p4 := p.Add(k0.Scale(h * cB40)).Add(k2.Scale(h * cB42)).Add(k3.Scale(h * cB43)).Add(k4.Scale(h * cB44)).Add(k5.Scale(h * cB45)).Add(k6v.Scale(h * cB46))
		errEst := p5.Dist(p4)
		if errEst <= o.Tol || h <= o.HMin {
			// Accept; grow the step for next time (classic 0.9 safety,
			// order-5 exponent).
			s.H = nextStep(h, errEst, o)
			return StepResult{P: p5, T: t + h, Evals: evals, Accepted: true}, k6v, true, nil
		}
		// Reject: shrink and retry.
		s.H = nextStep(h, errEst, o)
		if s.H >= h { // ensure progress on pathological error estimates
			s.H = h / 2
		}
		if s.H < o.HMin {
			s.H = o.HMin
		}
	}
	// Tolerance unreachable: accept a minimal Euler step (from k0, the
	// already-evaluated field at p) rather than spinning.
	s.H = o.HMin
	h := s.H
	return StepResult{P: p.Add(k0.Scale(h)), T: t + h, Evals: evals, Accepted: true}, vec.V3{}, false, nil
}

func nextStep(h, errEst float64, o Options) float64 {
	// Fast path for the common cruising regime: the step is pinned at
	// HMax and the error is comfortably inside tolerance, so the growth
	// factor is certainly ≥ 1 (shrinking would need errEst > 0.59·Tol)
	// and the HMax clamp hands back h unchanged — no Pow required. The
	// 4× margin keeps the shortcut far from the factor≈1 rounding
	// boundary, so it can never disagree with the exact computation.
	if o.HMax > 0 && h == o.HMax && h >= o.HMin && errEst*4 < o.Tol {
		return h
	}
	var factor float64
	if errEst == 0 {
		factor = 5
	} else {
		factor = 0.9 * math.Pow(o.Tol/errEst, 0.2)
		if factor > 5 {
			factor = 5
		}
		if factor < 0.1 {
			factor = 0.1
		}
	}
	h *= factor
	if o.HMax > 0 && h > o.HMax {
		h = o.HMax
	}
	if h < o.HMin {
		h = o.HMin
	}
	return h
}

// initialStepFrom picks a starting step from the local field value (the
// caller's already-computed evaluation at the start point) so the first
// step moves a small fraction of a unit length.
func (s *DoPri5) initialStepFrom(v0 vec.V3) float64 {
	v := v0.Norm()
	if v < 1e-12 {
		return 1e-3
	}
	h := 0.01 / v
	if s.Opts.HMax > 0 && h > s.Opts.HMax {
		h = s.Opts.HMax
	}
	if h < s.Opts.HMin {
		h = s.Opts.HMin
	}
	return h
}

// AdvectLimits bounds one Advect call.
type AdvectLimits struct {
	Bounds   vec.AABB // stop when the position leaves this box
	MaxSteps int      // stop after this many accepted steps (0 = unlimited)
	MaxTime  float64  // stop at this integration time (0 = unlimited)
	// Buf, when non-nil, is a reusable backing array for the result's
	// Points: geometry is collected into Buf[:0] instead of a fresh
	// allocation. The caller owns the aliasing — copy the points out
	// before reusing the buffer.
	Buf []vec.V3
}

// AdvectResult reports an Advect call.
type AdvectResult struct {
	P      vec.V3     // final position
	T      float64    // final integration time
	Steps  int        // accepted steps taken
	Evals  int        // field evaluations consumed
	Reason StopReason // why advection stopped
	Points []vec.V3   // positions after each accepted step (geometry)
}

// Advect integrates from (p, t) until a limit is reached, collecting the
// intermediate geometry. The caller owns domain semantics: typically
// Bounds is the current block's box, so StopOutOfBlock signals a block
// transition.
func (s *DoPri5) Advect(f Evaluator, p vec.V3, t float64, lim AdvectLimits) AdvectResult {
	return AdvectWith(s, f, p, t, lim)
}

// AdvectWith is Advect generic over the evaluator type: instantiated at
// a concrete field type it runs the whole inner loop without interface
// dispatch. The per-iteration speed check doubles as the step's first
// stage, and after an accepted step the FSAL value is carried into the
// next iteration, for six field evaluations per accepted step in steady
// state. All reused values are bit-identical to the ones previously
// recomputed.
func AdvectWith[E Evaluator](s *DoPri5, f E, p vec.V3, t float64, lim AdvectLimits) AdvectResult {
	res := AdvectResult{P: p, T: t, Points: lim.Buf[:0]}
	var v vec.V3 // field at res.P: fresh, or the last step's FSAL stage
	haveV := false
	for {
		if lim.MaxSteps > 0 && res.Steps >= lim.MaxSteps {
			res.Reason = StopMaxSteps
			return res
		}
		if lim.MaxTime > 0 && res.T >= lim.MaxTime {
			res.Reason = StopMaxTime
			return res
		}
		if !haveV {
			v = f.Eval(res.P)
			res.Evals++ // the speed check below
		}
		haveV = false
		if v.Norm() < s.Opts.MinSpeed {
			res.Reason = StopCritical
			return res
		}
		if !v.IsFinite() {
			res.Reason = StopError
			return res
		}
		if s.H == 0 {
			// A fresh solver picks its initial step before the horizon
			// clamp, so even the very first step is clamped.
			s.H = s.initialStepFrom(v)
		}
		if lim.MaxTime > 0 {
			// Land exactly on the time horizon: flow-map analyses (FTLE)
			// need neighboring trajectories to stop at identical times,
			// and epoch-bounded pathline advection must not overshoot
			// into the next time slab.
			if remain := lim.MaxTime - res.T; s.H > remain {
				s.H = remain
			}
		}
		step, k6, fsal, err := stepFrom(s, f, res.P, res.T, v)
		res.Evals += step.Evals
		if err != nil {
			res.Reason = StopError
			return res
		}
		res.P = step.P
		res.T = step.T
		res.Steps++
		res.Points = append(res.Points, step.P)
		if !lim.Bounds.Contains(res.P) {
			res.Reason = StopOutOfBlock
			return res
		}
		v, haveV = k6, fsal
	}
}

// TimeEvaluator is the right-hand side of the non-autonomous ODE
// dx/dt = v(x, t) used for pathlines in time-varying fields (the paper's
// Section 8 extension).
type TimeEvaluator interface {
	EvalAt(p vec.V3, t float64) vec.V3
}

// TimeEvalFunc adapts a function to TimeEvaluator.
type TimeEvalFunc func(p vec.V3, t float64) vec.V3

// EvalAt implements TimeEvaluator.
func (f TimeEvalFunc) EvalAt(p vec.V3, t float64) vec.V3 { return f(p, t) }

// StepT advances one accepted adaptive step of the non-autonomous system,
// evaluating the field at the proper stage times t + c_i·h.
func (s *DoPri5) StepT(f TimeEvaluator, p vec.V3, t float64) (StepResult, error) {
	return StepTWith(s, f, p, t)
}

// StepTWith is StepT generic over the evaluator type; see StepWith.
func StepTWith[E TimeEvaluator](s *DoPri5, f E, p vec.V3, t float64) (StepResult, error) {
	k0 := f.EvalAt(p, t)
	if !k0.IsFinite() {
		return StepResult{Evals: 1}, ErrNonFinite
	}
	if s.H == 0 {
		s.H = s.initialStepFrom(k0)
	}
	res, _, _, err := stepFromT(s, f, p, t, k0)
	res.Evals++ // k0 above
	return res, err
}

// stepFromT is stepFrom for the non-autonomous system. The final stage
// is evaluated at (p5, t+h) — exactly where the next step's k0 would be
// taken — so the FSAL reuse carries over unchanged.
func stepFromT[E TimeEvaluator](s *DoPri5, f E, p vec.V3, t float64, k0 vec.V3) (res StepResult, k6 vec.V3, fsal bool, err error) {
	o := s.Opts
	evals := 0
	for try := 0; try < 64; try++ {
		h := s.H
		q := p.Add(k0.Scale(h * cA10))
		k1 := f.EvalAt(q, t+cC1*h)
		evals++
		if !k1.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		q = p.Add(k0.Scale(h * cA20)).Add(k1.Scale(h * cA21))
		k2 := f.EvalAt(q, t+cC2*h)
		evals++
		if !k2.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		q = p.Add(k0.Scale(h * cA30)).Add(k1.Scale(h * cA31)).Add(k2.Scale(h * cA32))
		k3 := f.EvalAt(q, t+cC3*h)
		evals++
		if !k3.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		q = p.Add(k0.Scale(h * cA40)).Add(k1.Scale(h * cA41)).Add(k2.Scale(h * cA42)).Add(k3.Scale(h * cA43))
		k4 := f.EvalAt(q, t+cC4*h)
		evals++
		if !k4.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		q = p.Add(k0.Scale(h * cA50)).Add(k1.Scale(h * cA51)).Add(k2.Scale(h * cA52)).Add(k3.Scale(h * cA53)).Add(k4.Scale(h * cA54))
		k5 := f.EvalAt(q, t+h)
		evals++
		if !k5.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		p5 := p.Add(k0.Scale(h * cA60)).Add(k2.Scale(h * cA62)).Add(k3.Scale(h * cA63)).Add(k4.Scale(h * cA64)).Add(k5.Scale(h * cA65))
		k6v := f.EvalAt(p5, t+h)
		evals++
		if !k6v.IsFinite() {
			return StepResult{Evals: evals}, vec.V3{}, false, ErrNonFinite
		}
		p4 := p.Add(k0.Scale(h * cB40)).Add(k2.Scale(h * cB42)).Add(k3.Scale(h * cB43)).Add(k4.Scale(h * cB44)).Add(k5.Scale(h * cB45)).Add(k6v.Scale(h * cB46))
		errEst := p5.Dist(p4)
		if errEst <= o.Tol || h <= o.HMin {
			s.H = nextStep(h, errEst, o)
			return StepResult{P: p5, T: t + h, Evals: evals, Accepted: true}, k6v, true, nil
		}
		s.H = nextStep(h, errEst, o)
		if s.H >= h {
			s.H = h / 2
		}
		if s.H < o.HMin {
			s.H = o.HMin
		}
	}
	s.H = o.HMin
	return StepResult{P: p.Add(k0.Scale(s.H)), T: t + s.H, Evals: evals, Accepted: true}, vec.V3{}, false, nil
}

// AdvectT integrates the non-autonomous system from (p, t) under the same
// limits as Advect; MaxTime is the absolute time horizon.
func (s *DoPri5) AdvectT(f TimeEvaluator, p vec.V3, t float64, lim AdvectLimits) AdvectResult {
	return AdvectTWith(s, f, p, t, lim)
}

// AdvectTWith is AdvectT generic over the evaluator type; see AdvectWith
// for the dispatch and evaluation-reuse story, which carries over to the
// non-autonomous system unchanged.
func AdvectTWith[E TimeEvaluator](s *DoPri5, f E, p vec.V3, t float64, lim AdvectLimits) AdvectResult {
	res := AdvectResult{P: p, T: t, Points: lim.Buf[:0]}
	var v vec.V3 // field at (res.P, res.T): fresh, or the FSAL carry
	haveV := false
	for {
		if lim.MaxSteps > 0 && res.Steps >= lim.MaxSteps {
			res.Reason = StopMaxSteps
			return res
		}
		if lim.MaxTime > 0 && res.T >= lim.MaxTime {
			res.Reason = StopMaxTime
			return res
		}
		if !haveV {
			v = f.EvalAt(res.P, res.T)
			res.Evals++
		}
		haveV = false
		if v.Norm() < s.Opts.MinSpeed {
			res.Reason = StopCritical
			return res
		}
		if !v.IsFinite() {
			res.Reason = StopError
			return res
		}
		if s.H == 0 {
			// Same first-step horizon clamp as Advect.
			s.H = s.initialStepFrom(v)
		}
		if lim.MaxTime > 0 {
			if remain := lim.MaxTime - res.T; s.H > remain {
				s.H = remain
			}
		}
		step, k6, fsal, err := stepFromT(s, f, res.P, res.T, v)
		res.Evals += step.Evals
		if err != nil {
			res.Reason = StopError
			return res
		}
		res.P = step.P
		res.T = step.T
		res.Steps++
		res.Points = append(res.Points, step.P)
		if !lim.Bounds.Contains(res.P) {
			res.Reason = StopOutOfBlock
			return res
		}
		v, haveV = k6, fsal
	}
}

// RK4 is a classical fixed-step fourth-order Runge–Kutta integrator, used
// as a baseline in convergence tests.
type RK4 struct{ H float64 }

// Step advances one fixed step.
func (r RK4) Step(f Evaluator, p vec.V3, t float64) (vec.V3, float64) {
	h := r.H
	k1 := f.Eval(p)
	k2 := f.Eval(p.Add(k1.Scale(h / 2)))
	k3 := f.Eval(p.Add(k2.Scale(h / 2)))
	k4 := f.Eval(p.Add(k3.Scale(h)))
	inc := k1.Add(k2.Scale(2)).Add(k3.Scale(2)).Add(k4).Scale(h / 6)
	return p.Add(inc), t + h
}

// Euler is the first-order explicit Euler integrator, used as a baseline
// in convergence tests.
type Euler struct{ H float64 }

// Step advances one fixed step.
func (e Euler) Step(f Evaluator, p vec.V3, t float64) (vec.V3, float64) {
	return p.Add(f.Eval(p).Scale(e.H)), t + e.H
}
