package field

import (
	"math"
	"testing"

	"repro/internal/vec"
)

// unsteadyVariants lists the three time-varying dataset stand-ins.
func unsteadyVariants() []FieldT {
	return []FieldT{
		DefaultPulsingSupernova(),
		DefaultSawtoothTokamak(),
		DefaultSwitchingThermal(),
	}
}

func TestUnsteadyFieldsFiniteOverSpaceTime(t *testing.T) {
	for _, f := range unsteadyVariants() {
		name := f.(Named).Name()
		b := f.Bounds()
		t0, t1 := f.TimeRange()
		if !(t1 > t0) {
			t.Errorf("%s: empty time range [%g, %g]", name, t0, t1)
		}
		n := 6
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				for k := 0; k <= n; k++ {
					p := vec.Of(
						b.Min.X+(b.Max.X-b.Min.X)*float64(i)/float64(n),
						b.Min.Y+(b.Max.Y-b.Min.Y)*float64(j)/float64(n),
						b.Min.Z+(b.Max.Z-b.Min.Z)*float64(k)/float64(n),
					)
					for s := 0; s <= 4; s++ {
						tm := t0 + (t1-t0)*float64(s)/4
						v := f.EvalAt(p, tm)
						if !v.IsFinite() {
							t.Fatalf("%s: non-finite value %v at %v t=%g", name, v, p, tm)
						}
						if v.Norm() > 100 {
							t.Fatalf("%s: implausible magnitude %g at %v t=%g", name, v.Norm(), p, tm)
						}
					}
				}
			}
		}
	}
}

func TestUnsteadyFieldsFrozenEvalMatchesT0(t *testing.T) {
	// The embedded Field interface must answer the field frozen at its
	// initial time, so FieldT values slot in wherever a Field is wanted.
	for _, f := range unsteadyVariants() {
		name := f.(Named).Name()
		t0, _ := f.TimeRange()
		for _, p := range []vec.V3{
			f.Bounds().Center(),
			f.Bounds().Center().Add(vec.Of(0.1, -0.05, 0.08)),
		} {
			if got, want := f.Eval(p), f.EvalAt(p, t0); got != want {
				t.Errorf("%s: Eval(%v) = %v, EvalAt(t0) = %v", name, p, got, want)
			}
		}
	}
}

func TestUnsteadyFieldsActuallyVary(t *testing.T) {
	// Guard against a variant degenerating into its steady base: at some
	// probe point, mid-range time must differ from the initial time.
	for _, f := range unsteadyVariants() {
		name := f.(Named).Name()
		t0, t1 := f.TimeRange()
		varies := false
		for _, p := range probePoints(f.Bounds()) {
			if f.EvalAt(p, t0).Dist(f.EvalAt(p, t0+(t1-t0)*0.37)) > 1e-9 {
				varies = true
				break
			}
		}
		if !varies {
			t.Errorf("%s: field does not vary in time", name)
		}
	}
}

func probePoints(b vec.AABB) []vec.V3 {
	c := b.Center()
	s := b.Size().Scale(0.25)
	return []vec.V3{
		c,
		c.Add(vec.Of(s.X, 0, 0)),
		c.Add(vec.Of(0, s.Y, s.Z)),
		c.Add(vec.Of(-s.X, s.Y, -s.Z)),
	}
}

func TestPulsingSupernovaPeriodicity(t *testing.T) {
	f := DefaultPulsingSupernova()
	p := vec.Of(0.4, 0.1, 0.2)
	if got, want := f.EvalAt(p, f.Period), f.EvalAt(p, 0); got.Dist(want) > 1e-12 {
		t.Errorf("one full period apart: %v vs %v", got, want)
	}
	// Half a period in, expansion surges: the radial component at a
	// mid-shell point must exceed the steady value.
	radial := func(v vec.V3, p vec.V3) float64 { return v.Dot(p) / p.Norm() }
	v0 := f.EvalAt(p, 0)
	vHalf := f.EvalAt(p, f.Period/4) // sin peaks at quarter period
	if radial(vHalf, p) <= radial(v0, p) {
		t.Errorf("expansion did not surge: radial %g -> %g", radial(v0, p), radial(vHalf, p))
	}
}

func TestSawtoothTokamakCrash(t *testing.T) {
	f := DefaultSawtoothTokamak()
	p := vec.Of(f.MajorRadius+0.1, 0, 0.05)
	// Just before a crash the winding is ramped; just after it resets.
	pre := f.EvalAt(p, 0.999*f.Period)
	post := f.EvalAt(p, 1.001*f.Period)
	base := f.EvalAt(p, 0)
	if pre.Dist(base) < 1e-9 {
		t.Error("ramp end indistinguishable from ramp start; no sawtooth")
	}
	if post.Dist(base) > 0.05*base.Norm() {
		t.Errorf("post-crash field did not reset: %v vs base %v", post, base)
	}
	if math.Abs(pre.Z) <= math.Abs(base.Z) {
		t.Errorf("poloidal winding did not grow over the ramp: |Bz| %g -> %g",
			math.Abs(base.Z), math.Abs(pre.Z))
	}
}

func TestSwitchingThermalAlternates(t *testing.T) {
	f := DefaultSwitchingThermal()
	// Probe just downstream of each inlet.
	pa := f.InletA.Add(vec.Of(0.05, 0, 0))
	pb := f.InletB.Add(vec.Of(0.05, 0, 0))
	// At t=0 inlet A carries the jet; half a period later inlet B does.
	if f.EvalAt(pa, 0).X <= f.EvalAt(pa, f.Period/2).X {
		t.Error("inlet A not strongest at t=0")
	}
	if f.EvalAt(pb, f.Period/2).X <= f.EvalAt(pb, 0).X {
		t.Error("inlet B not strongest at half period")
	}
	// Weights sum to one: the combined jet momentum at the two probes is
	// steadier than either probe alone.
	sum0 := f.EvalAt(pa, 0).X + f.EvalAt(pb, 0).X
	sumHalf := f.EvalAt(pa, f.Period/2).X + f.EvalAt(pb, f.Period/2).X
	if math.Abs(sum0-sumHalf) > 0.25*math.Abs(sum0) {
		t.Errorf("switching does not conserve injected momentum: %g vs %g", sum0, sumHalf)
	}
}
