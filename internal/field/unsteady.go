package field

import (
	"math"

	"repro/internal/vec"
)

// This file contains the time-varying variants of the three application
// datasets — the unsteady workload the paper's Section 8 names as future
// work ("time-varying flow"). Each variant wraps its steady stand-in and
// modulates the parameters that drive the dataset's computational
// character, so pathline campaigns stress the same block-access patterns
// the steady studies do, plus the time dimension:
//
//   - PulsingSupernova: the core's rotation and the shock expansion
//     trade strength periodically, so field lines alternate between
//     orbiting the core and sweeping outward across blocks.
//   - SawtoothTokamak: the winding ramps up and crashes each sawtooth
//     period (the classic tokamak sawtooth instability), so field lines
//     change their poloidal transit rate — and their ring of visited
//     blocks — over time.
//   - SwitchingThermal: the twin inlets alternate smoothly, moving the
//     jet-dominated region between two wall patches.

// FieldT is a time-varying vector field v(x, t) over a bounded domain
// and a bounded time interval. The embedded Field's Eval answers the
// field frozen at its initial time, so every FieldT is usable wherever a
// steady Field is.
//
// Implementations must be safe for concurrent use; all provided fields
// are pure functions of position and time.
type FieldT interface {
	Field
	// EvalAt returns the field value at position p and time t. Outside
	// TimeRange the result is implementation defined (the provided
	// fields extend periodically or clamp); callers are expected to
	// stay inside.
	EvalAt(p vec.V3, t float64) vec.V3
	// TimeRange returns the simulated interval [T0, T1] the field
	// covers — the span a time-sliced decomposition of it stores.
	TimeRange() (t0, t1 float64)
}

// PulsingSupernova is the unsteady astrophysics stand-in: a Supernova
// whose core rotation and shock expansion pulse in antiphase with the
// given period, as if the proto-neutron star were ringing.
type PulsingSupernova struct {
	Supernova
	// Period is the pulse period; PulseAmp the modulation depth in
	// [0, 1); Horizon the end of the covered time range [0, Horizon].
	Period   float64
	PulseAmp float64
	Horizon  float64
}

// DefaultPulsingSupernova returns the configuration used by the unsteady
// scaling studies: two full pulses over the time range.
func DefaultPulsingSupernova() PulsingSupernova {
	return PulsingSupernova{
		Supernova: DefaultSupernova(),
		Period:    1.5,
		PulseAmp:  0.6,
		Horizon:   3.0,
	}
}

// Name implements Named.
func (s PulsingSupernova) Name() string { return "supernova-pulsing" }

// TimeRange implements FieldT.
func (s PulsingSupernova) TimeRange() (float64, float64) { return 0, s.Horizon }

// Eval implements Field, frozen at t = 0 (where the modulation is the
// steady configuration).
func (s PulsingSupernova) Eval(p vec.V3) vec.V3 { return s.EvalAt(p, 0) }

// EvalAt implements FieldT.
func (s PulsingSupernova) EvalAt(p vec.V3, t float64) vec.V3 {
	pulse := s.PulseAmp * math.Sin(2*math.Pi*t/s.Period)
	f := s.Supernova
	// Expansion surges while rotation weakens, and vice versa: the
	// dominant transport mechanism — and with it the set of blocks a
	// field line visits next — changes twice per period.
	f.ExpStrength *= 1 + pulse
	f.RotStrength *= 1 - 0.5*pulse
	return f.Eval(p)
}

// SawtoothTokamak is the unsteady fusion stand-in: a Tokamak whose
// winding (and island perturbation) ramp up over each sawtooth period
// and crash back, the NIMROD-style sawtooth cycle.
type SawtoothTokamak struct {
	Tokamak
	// Period is the sawtooth period; RampAmp the fractional growth of
	// the winding over one ramp; Horizon the end of the covered time
	// range [0, Horizon].
	Period  float64
	RampAmp float64
	Horizon float64
}

// DefaultSawtoothTokamak returns the configuration used by the unsteady
// scaling studies: three sawtooth crashes over the time range.
func DefaultSawtoothTokamak() SawtoothTokamak {
	return SawtoothTokamak{
		Tokamak: DefaultTokamak(),
		Period:  1.0,
		RampAmp: 0.8,
		Horizon: 3.0,
	}
}

// Name implements Named.
func (t SawtoothTokamak) Name() string { return "tokamak-sawtooth" }

// TimeRange implements FieldT.
func (t SawtoothTokamak) TimeRange() (float64, float64) { return 0, t.Horizon }

// Eval implements Field, frozen at t = 0 (the start of a ramp, which is
// the steady configuration).
func (t SawtoothTokamak) Eval(p vec.V3) vec.V3 { return t.EvalAt(p, 0) }

// EvalAt implements FieldT.
func (t SawtoothTokamak) EvalAt(p vec.V3, tm float64) vec.V3 {
	// Sawtooth ramp: winding and island amplitude grow linearly through
	// each period, then crash instantly back — so the rings of blocks
	// that field lines wind through widen until each crash re-confines
	// them.
	phase := tm / t.Period
	ramp := phase - math.Floor(phase)
	f := t.Tokamak
	f.Q *= 1 + t.RampAmp*ramp
	f.ChaosAmp *= 1 + t.RampAmp*ramp
	return f.Eval(p)
}

// SwitchingThermal is the unsteady thermal-hydraulics stand-in: the twin
// inlet jets alternate smoothly with the given period (as if valves were
// cycling), moving the turbulent jet region between the two inlets while
// the recirculation and outlet flow persist.
type SwitchingThermal struct {
	ThermalHydraulics
	// Period is the full switching cycle (A strong → B strong → A
	// strong); Horizon the end of the covered time range [0, Horizon].
	Period  float64
	Horizon float64
}

// DefaultSwitchingThermal returns the configuration used by the unsteady
// scaling studies: two full switching cycles over the time range.
func DefaultSwitchingThermal() SwitchingThermal {
	return SwitchingThermal{
		ThermalHydraulics: DefaultThermalHydraulics(),
		Period:            1.5,
		Horizon:           3.0,
	}
}

// Name implements Named.
func (t SwitchingThermal) Name() string { return "thermal-switching" }

// TimeRange implements FieldT.
func (t SwitchingThermal) TimeRange() (float64, float64) { return 0, t.Horizon }

// Eval implements Field, frozen at t = 0 (inlet A at full strength).
func (t SwitchingThermal) Eval(p vec.V3) vec.V3 { return t.EvalAt(p, 0) }

// EvalAt implements FieldT.
func (t SwitchingThermal) EvalAt(p vec.V3, tm float64) vec.V3 {
	// Inlet weights trade off smoothly and sum to 1, so the total
	// injected momentum is constant while its location migrates.
	wA := 0.5 * (1 + math.Cos(2*math.Pi*tm/t.Period))
	decay := t.jetDecay(p)
	jets := t.jet(p, t.InletA, decay).Scale(wA).Add(t.jet(p, t.InletB, decay).Scale(1 - wA))
	return jets.Add(t.ambient(p))
}
