// Package field defines the stationary vector fields that streamlines are
// computed in.
//
// The paper's evaluation uses three simulation datasets (a GenASiS
// supernova magnetic field, a NIMROD tokamak field, and a Nek5000 thermal
// hydraulics flow). Those datasets are not available, so this package
// provides analytic stand-ins with the same qualitative structure (see
// DESIGN.md §2), plus a set of elementary fields with known closed-form
// streamlines that the integrator and interpolation tests are validated
// against.
package field

import (
	"math"

	"repro/internal/vec"
)

// Field is a stationary vector field v(x) over a bounded domain.
//
// Implementations must be safe for concurrent use; all provided fields are
// pure functions of position.
type Field interface {
	// Eval returns the field value at p. Outside Bounds() the result is
	// implementation defined; callers are expected to stay inside.
	Eval(p vec.V3) vec.V3
	// Bounds returns the domain of definition.
	Bounds() vec.AABB
}

// Named is implemented by fields that carry a human-readable name, used in
// reports and rendered figures.
type Named interface {
	Name() string
}

// --- elementary fields (test substrates) ---

// Uniform is a constant field: v(x) = V everywhere.
type Uniform struct {
	V   vec.V3
	Box vec.AABB
}

// Eval implements Field.
func (u Uniform) Eval(vec.V3) vec.V3 { return u.V }

// Bounds implements Field.
func (u Uniform) Bounds() vec.AABB { return u.Box }

// Name implements Named.
func (u Uniform) Name() string { return "uniform" }

// Linear is an affine field v(x) = A·x + B with diagonal A. Trilinear
// interpolation reproduces it exactly, which makes it the reference field
// for grid-sampling tests.
type Linear struct {
	A   vec.V3 // diagonal of the matrix
	B   vec.V3
	Box vec.AABB
}

// Eval implements Field.
func (l Linear) Eval(p vec.V3) vec.V3 { return l.A.Mul(p).Add(l.B) }

// Bounds implements Field.
func (l Linear) Bounds() vec.AABB { return l.Box }

// Name implements Named.
func (l Linear) Name() string { return "linear" }

// Rotation is rigid rotation about the Z axis with angular velocity Omega:
// v(x) = Omega × x. Streamlines are circles; the exact solution is
// x(t) = R(Omega·t)·x0, which integrator convergence tests exploit.
type Rotation struct {
	Omega float64
	Box   vec.AABB
}

// Eval implements Field.
func (r Rotation) Eval(p vec.V3) vec.V3 {
	return vec.V3{X: -r.Omega * p.Y, Y: r.Omega * p.X, Z: 0}
}

// Bounds implements Field.
func (r Rotation) Bounds() vec.AABB { return r.Box }

// Name implements Named.
func (r Rotation) Name() string { return "rotation" }

// Exact returns the closed-form streamline point after time t starting
// from p0.
func (r Rotation) Exact(p0 vec.V3, t float64) vec.V3 {
	c, s := math.Cos(r.Omega*t), math.Sin(r.Omega*t)
	return vec.V3{X: c*p0.X - s*p0.Y, Y: s*p0.X + c*p0.Y, Z: p0.Z}
}

// Saddle is the linear saddle v = (x, -y, 0); it has a critical point at
// the origin and exact solution x(t) = (x0·e^t, y0·e^(-t), z0).
type Saddle struct {
	Box vec.AABB
}

// Eval implements Field.
func (s Saddle) Eval(p vec.V3) vec.V3 { return vec.V3{X: p.X, Y: -p.Y, Z: 0} }

// Bounds implements Field.
func (s Saddle) Bounds() vec.AABB { return s.Box }

// Name implements Named.
func (s Saddle) Name() string { return "saddle" }

// Exact returns the closed-form solution after time t from p0.
func (s Saddle) Exact(p0 vec.V3, t float64) vec.V3 {
	return vec.V3{X: p0.X * math.Exp(t), Y: p0.Y * math.Exp(-t), Z: p0.Z}
}

// ABC is the Arnold–Beltrami–Childress flow, a classic chaotic
// incompressible field used to stress integrators:
//
//	v = (A sin z + C cos y, B sin x + A cos z, C sin y + B cos x)
type ABC struct {
	A, B, C float64
	Box     vec.AABB
}

// Eval implements Field.
func (f ABC) Eval(p vec.V3) vec.V3 {
	return vec.V3{
		X: f.A*math.Sin(p.Z) + f.C*math.Cos(p.Y),
		Y: f.B*math.Sin(p.X) + f.A*math.Cos(p.Z),
		Z: f.C*math.Sin(p.Y) + f.B*math.Cos(p.X),
	}
}

// Bounds implements Field.
func (f ABC) Bounds() vec.AABB { return f.Box }

// Name implements Named.
func (f ABC) Name() string { return "abc" }

// DefaultABC returns the standard A=1, B=sqrt(2/3), C=sqrt(1/3) ABC flow on
// a [0,2π]^3 box.
func DefaultABC() ABC {
	tau := 2 * math.Pi
	return ABC{
		A:   1,
		B:   math.Sqrt(2.0 / 3.0),
		C:   math.Sqrt(1.0 / 3.0),
		Box: vec.Box(vec.Of(0, 0, 0), vec.Of(tau, tau, tau)),
	}
}

// Scaled wraps a field and multiplies its output by S; it is used to match
// velocity magnitudes between datasets so integration step counts are
// comparable.
type Scaled struct {
	F Field
	S float64
}

// Eval implements Field.
func (s Scaled) Eval(p vec.V3) vec.V3 { return s.F.Eval(p).Scale(s.S) }

// Bounds implements Field.
func (s Scaled) Bounds() vec.AABB { return s.F.Bounds() }

// Name implements Named.
func (s Scaled) Name() string {
	if n, ok := s.F.(Named); ok {
		return n.Name()
	}
	return "scaled"
}
