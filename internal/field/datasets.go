package field

import (
	"math"

	"repro/internal/vec"
)

// This file contains the analytic stand-ins for the three application
// datasets of the paper (Section 3.2). Each is designed to reproduce the
// *computational* character the paper attributes to the real data:
//
//   - Supernova: sparse seeds wander through most of the domain (shock
//     expansion), dense seeds near the core stay localized (rotation).
//   - Tokamak: streamlines wind around the torus indefinitely, repeatedly
//     revisiting the same ring of blocks; a chaotic perturbation makes
//     some lines slowly fill the whole torus.
//   - ThermalHydraulics: twin inlet jets, a big recirculation zone and an
//     outlet; dense inlet seeding keeps all work in a few blocks.

// Supernova models the magnetic field around a collapsing stellar core: a
// differentially rotating core, radial expansion behind the supernova
// shock front, and solenoidal turbulence in between.
//
// Domain: [-1,1]^3, core at the origin.
type Supernova struct {
	CoreRadius  float64 // radius of the proto-neutron star region
	ShockRadius float64 // radius of the shock front
	RotStrength float64 // peak rotational speed
	ExpStrength float64 // peak radial expansion speed
	TurbAmp     float64 // turbulence amplitude
}

// DefaultSupernova returns the configuration used by the scaling studies.
func DefaultSupernova() Supernova {
	return Supernova{
		CoreRadius:  0.12,
		ShockRadius: 0.75,
		RotStrength: 1.0,
		ExpStrength: 0.6,
		TurbAmp:     0.25,
	}
}

// Bounds implements Field.
func (s Supernova) Bounds() vec.AABB {
	return vec.Box(vec.Of(-1, -1, -1), vec.Of(1, 1, 1))
}

// Name implements Named.
func (s Supernova) Name() string { return "supernova" }

// Eval implements Field.
func (s Supernova) Eval(p vec.V3) vec.V3 {
	r := p.Norm()
	// Differential rotation about the z axis, strongest at the core
	// boundary and decaying slowly outward (1/r), so field lines seeded
	// near the core orbit it for many revolutions — the localization the
	// paper attributes to attracting structures (Section 3.1).
	rotMag := s.RotStrength
	switch {
	case r < s.CoreRadius:
		rotMag *= r / s.CoreRadius
	default:
		rotMag *= s.CoreRadius / r
	}
	rot := vec.V3{X: -p.Y, Y: p.X, Z: 0}
	if n := math.Hypot(p.X, p.Y); n > 1e-12 {
		rot = rot.Scale(rotMag / n)
	} else {
		rot = vec.V3{}
	}

	// Radial expansion ramping up (quadratically) toward the shock front
	// and dying beyond it, so field lines seeded mid-domain sweep
	// outward through many blocks while the core region stays rotation
	// dominated.
	expMag := 0.0
	if r > 2*s.CoreRadius {
		x := (r - 2*s.CoreRadius) / (s.ShockRadius - 2*s.CoreRadius)
		if x > 1 {
			x = math.Max(0, 2-x) // decays past the shock
		} else {
			x = x * x
		}
		expMag = s.ExpStrength * x
	}
	var rad vec.V3
	if r > 1e-12 {
		rad = p.Scale(expMag / r)
	}

	// Solenoidal turbulence: a few ABC-like modes, divergence free by
	// construction, active in the shell between core and shock.
	k1, k2 := 4.1, 6.3
	s1z, c1z := math.Sincos(k1 * p.Z)
	s2x, c2x := math.Sincos(k2 * p.X)
	turb := vec.V3{
		X: s1z + math.Cos(k2*p.Y),
		Y: s2x + c1z,
		Z: math.Sin(k1*p.Y) + c2x,
	}.Scale(s.TurbAmp * envelope(r, 3*s.CoreRadius, s.ShockRadius))

	return rot.Add(rad).Add(turb)
}

// envelope is a smooth bump that is ~1 between inner and outer and fades
// to 0 outside that shell.
func envelope(r, inner, outer float64) float64 {
	if r <= 0 {
		return 0
	}
	mid := (inner + outer) / 2
	half := (outer - inner) / 2
	x := (r - mid) / (half * 1.2)
	return math.Exp(-x * x)
}

// Tokamak models the magnetic field of a magnetically confined fusion
// device: a dominant toroidal component plus a poloidal winding, so field
// lines are helices that traverse the torus-shaped domain repeatedly. A
// small symmetry-breaking perturbation makes a fraction of the lines
// chaotic, slowly filling the whole torus (the paper calls this out as the
// interesting property of the NIMROD dataset).
//
// Domain: [-1,1] x [-1,1] x [-0.4,0.4]; torus centered on the z axis.
type Tokamak struct {
	MajorRadius float64 // distance from the z axis to the torus center line
	MinorRadius float64 // radius of the plasma cross-section
	B0          float64 // toroidal field strength at the magnetic axis
	Q           float64 // winding: poloidal turns per toroidal transit
	ChaosAmp    float64 // amplitude of the symmetry-breaking perturbation
}

// DefaultTokamak returns the configuration used by the scaling studies.
func DefaultTokamak() Tokamak {
	return Tokamak{
		MajorRadius: 0.6,
		MinorRadius: 0.28,
		B0:          1.0,
		Q:           0.35,
		ChaosAmp:    0.04,
	}
}

// Bounds implements Field.
func (t Tokamak) Bounds() vec.AABB {
	return vec.Box(vec.Of(-1, -1, -0.4), vec.Of(1, 1, 0.4))
}

// Name implements Named.
func (t Tokamak) Name() string { return "tokamak" }

// Eval implements Field.
func (t Tokamak) Eval(p vec.V3) vec.V3 {
	rho := math.Hypot(p.X, p.Y)
	if rho < 1e-9 {
		// On the axis of symmetry the toroidal direction is undefined;
		// return a small vertical push so integration never stalls.
		return vec.V3{Z: t.B0 * 0.01}
	}
	// Unit toroidal direction.
	ephi := vec.V3{X: -p.Y / rho, Y: p.X / rho}
	// Poloidal plane coordinates relative to the magnetic axis.
	u := rho - t.MajorRadius
	w := p.Z
	// 1/R falloff of the toroidal field.
	btor := t.B0 * t.MajorRadius / rho
	// Poloidal rotation around the magnetic axis confines lines to nested
	// tori; the rate grows with minor radius (sheared q profile).
	rmin2 := u*u + w*w
	shear := 1 + 1.5*rmin2/(t.MinorRadius*t.MinorRadius)
	bpolU := -w * t.Q * shear
	bpolW := u * t.Q * shear
	// Map the poloidal (d rho, dz) components back to Cartesian.
	erho := vec.V3{X: p.X / rho, Y: p.Y / rho}
	v := ephi.Scale(btor).
		Add(erho.Scale(bpolU)).
		Add(vec.V3{Z: bpolW})
	// Symmetry-breaking island perturbation (drives the chaotic lines).
	if t.ChaosAmp != 0 {
		phi := math.Atan2(p.Y, p.X)
		s2p, c2p := math.Sincos(2 * phi)
		pert := t.ChaosAmp * s2p * math.Cos(3*math.Atan2(w, u))
		v = v.Add(erho.Scale(pert)).Add(vec.V3{Z: t.ChaosAmp * c2p})
	}
	return v
}

// InsideTorus reports whether p lies within the plasma cross-section; seed
// generators use it to place seeds in the confined region.
func (t Tokamak) InsideTorus(p vec.V3) bool {
	rho := math.Hypot(p.X, p.Y)
	u := rho - t.MajorRadius
	return u*u+p.Z*p.Z < t.MinorRadius*t.MinorRadius
}

// ThermalHydraulics models the twin-inlet mixing box of the Nek5000 case
// study: two jets enter through one wall, a large recirculation zone mixes
// them, and the flow leaves through an outlet in the upper corner.
//
// Domain: the unit box [0,1]^3. Inlets are on the x=0 wall, the outlet is
// near (1, 0.9, 0.9).
type ThermalHydraulics struct {
	InletA, InletB vec.V3  // inlet centers on the x=0 wall
	InletRadius    float64 // jet radius
	JetSpeed       float64 // peak inlet velocity
	Outlet         vec.V3  // outlet center
	RecircStrength float64 // strength of the box-scale recirculation
	TurbAmp        float64 // near-inlet turbulence amplitude
}

// DefaultThermalHydraulics returns the configuration used by the scaling
// studies; inlet A is the one the dense stream-surface seeding surrounds.
func DefaultThermalHydraulics() ThermalHydraulics {
	return ThermalHydraulics{
		// Inlet positions keep the dense seeding circle (radius 0.05,
		// see experiments.BuildProblem) inside a single block of both the
		// 4^3 and 8^3 decompositions — as in the paper, where the entire
		// 22,000-seed circle lands on one processor's block.
		InletA:         vec.Of(0, 0.43, 0.56),
		InletB:         vec.Of(0, 0.68, 0.56),
		InletRadius:    0.04,
		JetSpeed:       1.5,
		Outlet:         vec.Of(1, 0.9, 0.9),
		RecircStrength: 0.5,
		TurbAmp:        0.35,
	}
}

// Bounds implements Field.
func (t ThermalHydraulics) Bounds() vec.AABB {
	return vec.Box(vec.Of(0, 0, 0), vec.Of(1, 1, 1))
}

// Name implements Named.
func (t ThermalHydraulics) Name() string { return "thermal" }

// Eval implements Field.
func (t ThermalHydraulics) Eval(p vec.V3) vec.V3 {
	decay := t.jetDecay(p)
	return t.jet(p, t.InletA, decay).Add(t.jet(p, t.InletB, decay)).Add(t.ambient(p))
}

// ambient returns everything but the inlet jets — recirculation, outlet
// sink and near-inlet turbulence — so unsteady variants can re-weight
// the jets without duplicating the rest of the flow.
func (t ThermalHydraulics) ambient(p vec.V3) vec.V3 {
	var v vec.V3

	// Box-scale recirculation: a vortex about an axis through the box
	// center, parallel to y, so fluid sweeps from the inlet wall along the
	// floor and back along the ceiling.
	c := vec.Of(0.5, 0.5, 0.5)
	d := p.Sub(c)
	recirc := vec.V3{X: d.Z, Z: -d.X}.Scale(t.RecircStrength)
	v = v.Add(recirc)

	// Outlet sink: draws flow toward the outlet corner within its basin.
	do := t.Outlet.Sub(p)
	r := do.Norm()
	if r > 1e-9 {
		sink := do.Scale(0.4 * math.Exp(-r*r/(2*0.3*0.3)) / r)
		v = v.Add(sink)
	}

	// Near-inlet turbulence (the paper's Figure 4 shows strong turbulence
	// in the flow leaving an inlet).
	ra := p.Sub(t.InletA).Norm()
	rb := p.Sub(t.InletB).Norm()
	near := math.Exp(-ra*ra/(2*0.2*0.2)) + math.Exp(-rb*rb/(2*0.2*0.2))
	if near > 1e-6 {
		k := 17.0
		sx, cx := math.Sincos(k * p.X)
		sy, cy := math.Sincos(k * p.Y)
		sz, cz := math.Sincos(k * p.Z)
		turb := vec.V3{
			X: sy * cz,
			Y: sz * cx,
			Z: sx * cy,
		}.Scale(t.TurbAmp * near)
		v = v.Add(turb)
	}
	return v
}

// jetDecay is the penetration-depth decay factor shared by both inlet
// jets — it depends only on p.X, so callers compute it once per
// evaluation and pass it to each jet.
func (t ThermalHydraulics) jetDecay(p vec.V3) float64 {
	return math.Exp(-p.X / 0.6)
}

// jet returns the velocity contribution of one inlet jet: a Gaussian
// profile around the jet axis (+x from the inlet center), scaled by the
// shared penetration decay from jetDecay.
func (t ThermalHydraulics) jet(p, inlet vec.V3, decay float64) vec.V3 {
	dy := p.Y - inlet.Y
	dz := p.Z - inlet.Z
	r2 := dy*dy + dz*dz
	sigma := t.InletRadius * (1 + 2*p.X) // the jet widens as it penetrates
	profile := math.Exp(-r2 / (2 * sigma * sigma))
	return vec.V3{X: t.JetSpeed * profile * decay}
}
