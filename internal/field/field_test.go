package field

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func TestUniform(t *testing.T) {
	u := Uniform{V: vec.Of(1, 2, 3), Box: vec.Box(vec.Of(0, 0, 0), vec.Of(1, 1, 1))}
	if got := u.Eval(vec.Of(0.3, 0.9, 0.1)); got != vec.Of(1, 2, 3) {
		t.Errorf("Eval = %v", got)
	}
	if u.Bounds() != u.Box {
		t.Error("Bounds mismatch")
	}
}

func TestLinear(t *testing.T) {
	l := Linear{A: vec.Of(2, 3, -1), B: vec.Of(1, 0, 5)}
	got := l.Eval(vec.Of(1, 1, 1))
	want := vec.Of(3, 3, 4)
	if got != want {
		t.Errorf("Eval = %v, want %v", got, want)
	}
}

func TestRotationTangential(t *testing.T) {
	r := Rotation{Omega: 2}
	p := vec.Of(1, 0, 0)
	v := r.Eval(p)
	if v != vec.Of(0, 2, 0) {
		t.Errorf("Eval = %v", v)
	}
	// Velocity is always perpendicular to the radius in the XY plane.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := vec.Of(rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1)
		v := r.Eval(p)
		radial := vec.Of(p.X, p.Y, 0)
		if math.Abs(v.Dot(radial)) > 1e-12 {
			t.Fatalf("rotation not tangential at %v", p)
		}
	}
}

func TestRotationExact(t *testing.T) {
	r := Rotation{Omega: 1}
	p0 := vec.Of(1, 0, 0.5)
	got := r.Exact(p0, math.Pi/2)
	want := vec.Of(0, 1, 0.5)
	if got.Dist(want) > 1e-12 {
		t.Errorf("Exact = %v, want %v", got, want)
	}
	// Full revolution returns to start.
	if d := r.Exact(p0, 2*math.Pi).Dist(p0); d > 1e-12 {
		t.Errorf("full revolution drift %g", d)
	}
}

func TestSaddleExact(t *testing.T) {
	s := Saddle{}
	p0 := vec.Of(0.1, 2, 1)
	got := s.Exact(p0, 1)
	want := vec.Of(0.1*math.E, 2/math.E, 1)
	if got.Dist(want) > 1e-12 {
		t.Errorf("Exact = %v, want %v", got, want)
	}
}

// divergence numerically estimates div v at p via central differences.
func divergence(f Field, p vec.V3, h float64) float64 {
	dx := (f.Eval(p.Add(vec.Of(h, 0, 0))).X - f.Eval(p.Sub(vec.Of(h, 0, 0))).X) / (2 * h)
	dy := (f.Eval(p.Add(vec.Of(0, h, 0))).Y - f.Eval(p.Sub(vec.Of(0, h, 0))).Y) / (2 * h)
	dz := (f.Eval(p.Add(vec.Of(0, 0, h))).Z - f.Eval(p.Sub(vec.Of(0, 0, h))).Z) / (2 * h)
	return dx + dy + dz
}

func TestABCDivergenceFree(t *testing.T) {
	f := DefaultABC()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		p := vec.Of(rng.Float64()*6, rng.Float64()*6, rng.Float64()*6)
		if d := divergence(f, p, 1e-5); math.Abs(d) > 1e-6 {
			t.Fatalf("ABC divergence %g at %v", d, p)
		}
	}
}

func TestScaled(t *testing.T) {
	base := Uniform{V: vec.Of(1, 0, 0), Box: vec.Box(vec.Of(0, 0, 0), vec.Of(1, 1, 1))}
	s := Scaled{F: base, S: 3}
	if got := s.Eval(vec.V3{}); got != vec.Of(3, 0, 0) {
		t.Errorf("Scaled Eval = %v", got)
	}
	if s.Bounds() != base.Box {
		t.Error("Scaled Bounds mismatch")
	}
	if s.Name() != "uniform" {
		t.Errorf("Scaled Name = %q", s.Name())
	}
}

func TestSupernovaStructure(t *testing.T) {
	s := DefaultSupernova()
	b := s.Bounds()
	if !b.Contains(vec.Of(0, 0, 0)) {
		t.Fatal("bounds must contain the core")
	}
	// Field is finite everywhere in the domain, including the origin.
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		p := b.Min.Lerp(b.Max, rng.Float64())
		p.Y = b.Min.Y + rng.Float64()*b.Size().Y
		p.Z = b.Min.Z + rng.Float64()*b.Size().Z
		if v := s.Eval(p); !v.IsFinite() {
			t.Fatalf("non-finite field at %v: %v", p, v)
		}
	}
	if v := s.Eval(vec.V3{}); !v.IsFinite() {
		t.Fatalf("non-finite at origin: %v", v)
	}

	// Near the core rotation dominates: velocity mostly tangential.
	p := vec.Of(s.CoreRadius, 0, 0)
	v := s.Eval(p)
	if math.Abs(v.Y) < math.Abs(v.X) {
		t.Errorf("expected tangential dominance at core edge, got %v", v)
	}

	// Mid-shell has a meaningful radial (expansion) component.
	p = vec.Of(0.45, 0, 0)
	v = s.Eval(p)
	if v.X <= 0 {
		t.Errorf("expected outward expansion at %v, got %v", p, v)
	}
}

func TestTokamakConfinement(t *testing.T) {
	tok := DefaultTokamak()
	if !tok.InsideTorus(vec.Of(tok.MajorRadius, 0, 0)) {
		t.Fatal("magnetic axis must be inside torus")
	}
	if tok.InsideTorus(vec.Of(0, 0, 0)) {
		t.Fatal("origin must be outside torus")
	}
	// On the magnetic axis the field is purely toroidal (up to the small
	// chaos term).
	p := vec.Of(tok.MajorRadius, 0, 0)
	v := tok.Eval(p)
	if math.Abs(v.Y) < 0.5*tok.B0 {
		t.Errorf("toroidal component too small on axis: %v", v)
	}
	// Field never vanishes inside the torus (lines keep moving).
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		theta := rng.Float64() * 2 * math.Pi
		phi := rng.Float64() * 2 * math.Pi
		rr := rng.Float64() * tok.MinorRadius * 0.95
		rho := tok.MajorRadius + rr*math.Cos(theta)
		p := vec.Of(rho*math.Cos(phi), rho*math.Sin(phi), rr*math.Sin(theta))
		if v := tok.Eval(p); v.Norm() < 0.1 {
			t.Fatalf("field nearly vanishes at %v: %v", p, v)
		}
	}
	if v := tok.Eval(vec.Of(0, 0, 0.1)); !v.IsFinite() {
		t.Fatalf("non-finite on symmetry axis: %v", v)
	}
}

func TestTokamakToroidalCirculation(t *testing.T) {
	tok := DefaultTokamak()
	// At several toroidal angles, velocity keeps a consistent sign of
	// circulation (lines go around the torus, not back and forth).
	for i := 0; i < 16; i++ {
		phi := float64(i) / 16 * 2 * math.Pi
		p := vec.Of(tok.MajorRadius*math.Cos(phi), tok.MajorRadius*math.Sin(phi), 0)
		v := tok.Eval(p)
		ephi := vec.Of(-math.Sin(phi), math.Cos(phi), 0)
		if v.Dot(ephi) <= 0 {
			t.Fatalf("no forward toroidal circulation at phi=%g: %v", phi, v)
		}
	}
}

func TestThermalInletJet(t *testing.T) {
	th := DefaultThermalHydraulics()
	// Straight in front of inlet A the flow moves strongly in +x.
	p := th.InletA.Add(vec.Of(0.05, 0, 0))
	v := th.Eval(p)
	if v.X < 0.5 {
		t.Errorf("weak jet at inlet A: %v", v)
	}
	// Far from both inlets the jet contribution is negligible: speed well
	// below jet speed.
	far := vec.Of(0.9, 0.1, 0.1)
	if s := th.Eval(far).Norm(); s > th.JetSpeed {
		t.Errorf("excess speed far from inlets: %g", s)
	}
}

func TestThermalFiniteEverywhere(t *testing.T) {
	th := DefaultThermalHydraulics()
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 1000; i++ {
		p := vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
		if v := th.Eval(p); !v.IsFinite() {
			t.Fatalf("non-finite at %v: %v", p, v)
		}
	}
	// Outlet center itself must be finite (sink has a removable
	// singularity guard).
	if v := th.Eval(th.Outlet); !v.IsFinite() {
		t.Fatalf("non-finite at outlet: %v", v)
	}
}

func TestDatasetNames(t *testing.T) {
	cases := []struct {
		f    Named
		want string
	}{
		{DefaultSupernova(), "supernova"},
		{DefaultTokamak(), "tokamak"},
		{DefaultThermalHydraulics(), "thermal"},
		{DefaultABC(), "abc"},
	}
	for _, c := range cases {
		if c.f.Name() != c.want {
			t.Errorf("Name = %q, want %q", c.f.Name(), c.want)
		}
	}
}

func TestBoundsNonEmpty(t *testing.T) {
	fields := []Field{
		DefaultSupernova(), DefaultTokamak(), DefaultThermalHydraulics(),
		DefaultABC(),
	}
	for _, f := range fields {
		if f.Bounds().Volume() <= 0 {
			t.Errorf("%T has empty bounds", f)
		}
	}
}
