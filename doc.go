// Package repro is a from-scratch Go reproduction of Pugmire, Childs,
// Garth, Ahern and Weber, "Scalable Computation of Streamlines on Very
// Large Datasets" (SC 2009): four parallel streamline-computation
// algorithms — the paper's Static Allocation, Load On Demand and novel
// Hybrid Master/Slave scheme, plus a decentralized Work Stealing
// extension of its Section 8 outlook — running on a deterministic
// simulated cluster, together with the full evaluation campaign that
// regenerates every figure of the paper's Section 5 with a stealing
// block alongside the paper's three algorithms. Unsteady (time-varying)
// flow is a first-class workload: the same campaigns trace pathlines
// through time-sliced space-time blocks with the -unsteady flag, per
// the paper's Section 4 block-with-a-time-step model. Asynchronous
// predictive prefetching (-prefetch, internal/prefetch) overlaps block
// reads with computation in all four algorithms, hiding the blocking
// I/O the paper's Figure 6 measures while keeping geometry bit-identical.
// Staggered seed release (-inject, internal/seeds injection schedules)
// makes streak-line-style continuous injection a first-class workload:
// seeds released over time reshape load balance and I/O burstiness while
// every particle's geometry stays pinned by the same golden digests.
// The determinism contract itself is proved at compile time by slvet
// (cmd/slvet, internal/invlint), a go/analysis-style linter that runs
// under go vet -vettool and flags wall-clock reads, global rand,
// order-sensitive map iteration, host-time blocking in simulated code,
// half-wired experiment axes and invisible metrics counters.
//
// See README.md for a tour and DESIGN.md for the system inventory,
// substitutions, design-choice notes, the work-stealing scheme
// (DESIGN.md §6), the unsteady substrate (§7), the async-prefetch
// subsystem (§8), the injection-schedule subsystem (§9) and the
// invariant linter (§10). The entry points are:
//
//   - internal/core: the four algorithms (core.Run)
//   - internal/experiments: datasets, machine model, figure harness
//   - internal/invlint: the slvet analyzer suite
//   - cmd/slbench, cmd/slrun, cmd/slviz, cmd/slvet: command-line tools
//   - examples/: runnable walkthroughs (see examples/README.md)
package repro
