// Package repro is a from-scratch Go reproduction of Pugmire, Childs,
// Garth, Ahern and Weber, "Scalable Computation of Streamlines on Very
// Large Datasets" (SC 2009): three parallel streamline-computation
// algorithms — Static Allocation, Load On Demand, and the paper's novel
// Hybrid Master/Slave scheme — running on a deterministic simulated
// cluster, together with the full evaluation campaign that regenerates
// every figure of the paper's Section 5.
//
// See README.md for a tour and DESIGN.md for the system inventory,
// substitutions and design-choice notes. The entry points are:
//
//   - internal/core: the three algorithms (core.Run)
//   - internal/experiments: datasets, machine model, figure harness
//   - cmd/slbench, cmd/slrun, cmd/slviz: command-line tools
//   - examples/: runnable walkthroughs
package repro
